package replay

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"tracemod/internal/core"
)

func TestWriteReadRoundTrip(t *testing.T) {
	tr := core.Trace{
		{D: time.Second, DelayParams: core.DelayParams{F: 1500 * time.Microsecond, Vb: 5333.25, Vr: 301.5}, L: 0.05},
		{D: 2 * time.Second, DelayParams: core.DelayParams{F: 40 * time.Millisecond, Vb: 80000, Vr: 0}, L: 0.25},
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range tr {
		if got[i].D != tr[i].D || got[i].F != tr[i].F {
			t.Fatalf("tuple %d timing: %+v vs %+v", i, got[i], tr[i])
		}
		if math.Abs(float64(got[i].Vb-tr[i].Vb)) > 0.01 || math.Abs(got[i].L-tr[i].L) > 1e-6 {
			t.Fatalf("tuple %d params: %+v vs %+v", i, got[i], tr[i])
		}
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err != ErrBadHeader {
		t.Fatalf("empty: %v", err)
	}
	if _, err := Read(strings.NewReader("not a trace\n1 2 3 4 5\n")); err != ErrBadHeader {
		t.Fatalf("bad header: %v", err)
	}
	if _, err := Read(strings.NewReader(FileHeader + "\ngarbage line\n")); err == nil {
		t.Fatal("garbage line should error")
	}
	// Valid syntax, invalid semantics (loss = 1.5).
	if _, err := Read(strings.NewReader(FileHeader + "\n1000000 1000 100 10 1.5\n")); err == nil {
		t.Fatal("invalid tuple should fail validation")
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := FileHeader + "\n\n# a comment\n1000000 1000 100.0 10.0 0.0\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 1 || tr[0].D != time.Second {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestConstant(t *testing.T) {
	p := core.DelayParams{F: time.Millisecond, Vb: 100, Vr: 10}
	tr := Constant(p, 0.1, 5*time.Second, time.Second)
	if len(tr) != 5 || tr.TotalDuration() != 5*time.Second {
		t.Fatalf("trace = %d tuples, %v", len(tr), tr.TotalDuration())
	}
	for _, tu := range tr {
		if tu.DelayParams != p || tu.L != 0.1 {
			t.Fatalf("tuple = %+v", tu)
		}
	}
	// Non-multiple duration gets a short final tuple.
	tr2 := Constant(p, 0, 2500*time.Millisecond, time.Second)
	if tr2.TotalDuration() != 2500*time.Millisecond {
		t.Fatalf("total = %v", tr2.TotalDuration())
	}
	if tr2[len(tr2)-1].D != 500*time.Millisecond {
		t.Fatalf("final tuple = %v", tr2[len(tr2)-1].D)
	}
}

func TestStep(t *testing.T) {
	a := core.DelayParams{F: time.Millisecond, Vb: 100, Vr: 0}
	b := core.DelayParams{F: 10 * time.Millisecond, Vb: 1000, Vr: 0}
	tr := Step(a, b, 0, 0.2, 10*time.Second, 30*time.Second, time.Second)
	if tr.TotalDuration() != 30*time.Second {
		t.Fatalf("total = %v", tr.TotalDuration())
	}
	if got := tr.At(5*time.Second, false); got.F != a.F || got.L != 0 {
		t.Fatalf("before step: %+v", got)
	}
	if got := tr.At(15*time.Second, false); got.F != b.F || got.L != 0.2 {
		t.Fatalf("after step: %+v", got)
	}
}

func TestImpulse(t *testing.T) {
	base := core.DelayParams{F: time.Millisecond, Vb: 100, Vr: 0}
	spike := core.DelayParams{F: 100 * time.Millisecond, Vb: 10000, Vr: 0}
	tr := Impulse(base, spike, 0, 0.5, 10*time.Second, 5*time.Second, 30*time.Second, time.Second)
	if tr.TotalDuration() != 30*time.Second {
		t.Fatalf("total = %v", tr.TotalDuration())
	}
	if tr.At(5*time.Second, false).F != base.F {
		t.Fatal("pre-impulse wrong")
	}
	if tr.At(12*time.Second, false).F != spike.F {
		t.Fatal("impulse wrong")
	}
	if tr.At(20*time.Second, false).F != base.F {
		t.Fatal("post-impulse wrong")
	}
}

func TestRamp(t *testing.T) {
	a := core.DelayParams{F: 0, Vb: 0, Vr: 0}
	b := core.DelayParams{F: 10 * time.Millisecond, Vb: 1000, Vr: 100}
	tr := Ramp(a, b, 0, 11*time.Second, time.Second)
	if len(tr) != 11 {
		t.Fatalf("len = %d", len(tr))
	}
	if tr[0].F != 0 || tr[10].F != 10*time.Millisecond {
		t.Fatalf("endpoints: %v .. %v", tr[0].F, tr[10].F)
	}
	// Monotone.
	for i := 1; i < len(tr); i++ {
		if tr[i].F < tr[i-1].F || tr[i].Vb < tr[i-1].Vb {
			t.Fatal("ramp not monotone")
		}
	}
	// Single-tuple ramp doesn't divide by zero.
	one := Ramp(a, b, 0, time.Second, 2*time.Second)
	if len(one) != 1 {
		t.Fatalf("one = %d tuples", len(one))
	}
}

func TestWaveLANLike(t *testing.T) {
	tr := WaveLANLike(60 * time.Second)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bw := tr.MeanVb().BitsPerSec()
	if bw < 1.2e6 || bw > 1.8e6 {
		t.Fatalf("bandwidth = %.2f Mb/s, want ≈1.5", bw/1e6)
	}
}

func TestSlowNetLike(t *testing.T) {
	tr := SlowNetLike(60 * time.Second)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if fast, slow := WaveLANLike(time.Second).MeanVb(), tr.MeanVb(); slow < 5*fast {
		t.Fatal("slow net should be much slower than WaveLAN")
	}
}

// Property: any valid generated trace survives a serialize/parse cycle with
// microsecond timing fidelity.
func TestSerializationProperty(t *testing.T) {
	f := func(fUS uint16, vb, vr uint16, lossNum uint8, durS uint8) bool {
		p := core.DelayParams{
			F:  time.Duration(fUS) * time.Microsecond,
			Vb: core.PerByte(vb),
			Vr: core.PerByte(vr),
		}
		loss := float64(lossNum%100) / 100
		dur := time.Duration(durS%20+1) * time.Second
		tr := Constant(p, loss, dur, time.Second)
		var buf bytes.Buffer
		if Write(&buf, tr) != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(tr) {
			return false
		}
		for i := range tr {
			if got[i].D != tr[i].D || got[i].F != tr[i].F {
				return false
			}
			if math.Abs(float64(got[i].Vb-tr[i].Vb)) > 0.01 || math.Abs(got[i].L-tr[i].L) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
