// Tuple sanitization: field-collected replay traces arrive with the
// scars of real measurement — NaN solver outputs serialized before
// validation, negative costs from clock steps, loss estimates past 1
// from miscounted sequence numbers. Sanitize repairs what is repairable
// (clamping) and drops what is not, so a single bad line no longer
// condemns an otherwise usable trace.
package replay

import (
	"errors"
	"fmt"
	"io"
	"math"

	"tracemod/internal/core"
)

// SanitizeReport accounts for a sanitizing pass over a replay trace.
type SanitizeReport struct {
	// Kept is the number of tuples surviving (possibly clamped).
	Kept int
	// Dropped is the number of tuples rejected outright: non-positive or
	// non-finite duration, or NaN/Inf delay parameters that cannot be
	// meaningfully repaired.
	Dropped int
	// Clamped is the number of tuples that survived with at least one
	// field adjusted (negative cost raised to zero, loss clamped into
	// [0, MaxLoss]).
	Clamped int
}

// Clean reports whether sanitization changed nothing.
func (r SanitizeReport) Clean() bool { return r.Dropped == 0 && r.Clamped == 0 }

func (r SanitizeReport) String() string {
	if r.Clean() {
		return fmt.Sprintf("clean: %d tuples", r.Kept)
	}
	return fmt.Sprintf("sanitized: %d kept (%d clamped), %d dropped", r.Kept, r.Clamped, r.Dropped)
}

// ErrNoTuples is returned when sanitization (or a lenient read) leaves
// nothing usable.
var ErrNoTuples = errors.New("replay: no usable tuples after sanitization")

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// sanitizeTuple repairs one tuple in place. It returns (kept, clamped).
func sanitizeTuple(t *core.Tuple) (bool, bool) {
	// Unrepairable: a tuple with no positive duration covers no time, and
	// NaN/Inf costs carry no information to clamp toward.
	if t.D <= 0 {
		return false, false
	}
	if !finite(float64(t.Vb)) || !finite(float64(t.Vr)) || math.IsNaN(t.L) || math.IsInf(t.L, 0) {
		return false, false
	}
	clamped := false
	if t.F < 0 {
		t.F = 0
		clamped = true
	}
	if t.Vb < 0 {
		t.Vb = 0
		clamped = true
	}
	if t.Vr < 0 {
		t.Vr = 0
		clamped = true
	}
	if t.L < 0 {
		t.L = 0
		clamped = true
	}
	if t.L >= 1 {
		t.L = core.MaxLoss
		clamped = true
	}
	return true, clamped
}

// Sanitize returns a physically meaningful copy of tr: repairable tuples
// are clamped, unrepairable ones dropped, and the report accounts for
// both. The input is never modified. The returned trace passes
// core.Trace.Validate unless every tuple was dropped, in which case the
// error is ErrNoTuples.
func Sanitize(tr core.Trace) (core.Trace, SanitizeReport, error) {
	out := make(core.Trace, 0, len(tr))
	var rep SanitizeReport
	for _, t := range tr {
		kept, clamped := sanitizeTuple(&t)
		if !kept {
			rep.Dropped++
			continue
		}
		if clamped {
			rep.Clamped++
		}
		rep.Kept++
		out = append(out, t)
	}
	tuplesDropped.Add(int64(rep.Dropped))
	tuplesClamped.Add(int64(rep.Clamped))
	if len(out) == 0 {
		return nil, rep, ErrNoTuples
	}
	return out, rep, nil
}

// ReadLenient parses a serialized replay trace, skipping lines that do
// not parse and sanitizing the tuples that do. It fails only when the
// header is missing, the underlying reader errors, or nothing usable
// remains. Use Read when the trace is expected to be pristine.
func ReadLenient(r io.Reader) (core.Trace, SanitizeReport, error) {
	raw, skipped, err := readLenient(r)
	if err != nil {
		readErrors.Inc()
		return nil, SanitizeReport{}, err
	}
	tr, rep, err := Sanitize(raw)
	rep.Dropped += skipped
	tuplesDropped.Add(int64(skipped))
	if err != nil {
		readErrors.Inc()
		return nil, rep, err
	}
	tracesRead.Inc()
	tuplesRead.Add(int64(len(tr)))
	return tr, rep, nil
}

// readLenient is read() without the abort-on-first-error behavior: bad
// lines are counted, not fatal, and validation is left to Sanitize.
func readLenient(r io.Reader) (core.Trace, int, error) {
	sc := newHeaderScanner(r)
	if err := sc.expectHeader(); err != nil {
		return nil, 0, err
	}
	var tr core.Trace
	skipped := 0
	for {
		text, ok := sc.next()
		if !ok {
			break
		}
		t, err := parseTupleLine(text)
		if err != nil {
			skipped++
			continue
		}
		tr = append(tr, t)
	}
	if err := sc.err(); err != nil {
		return nil, 0, err
	}
	return tr, skipped, nil
}
