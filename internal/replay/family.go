// Trace families (Section 6): multiple traversals of the same path form a
// family that captures the path's variation. A family can be reduced to
// envelope traces — optimistic, typical, and pessimistic — giving a
// benchmark suite for stress-testing a mobile system across the range of
// conditions the path actually exhibits.

package replay

import (
	"errors"
	"math"
	"sort"
	"time"

	"tracemod/internal/core"
)

// Family is a set of replay traces collected over the same path.
type Family []core.Trace

// ErrEmptyFamily is returned when no traces are supplied.
var ErrEmptyFamily = errors.New("replay: empty trace family")

// Envelope is the family reduced to per-instant order statistics.
type Envelope struct {
	// Optimistic takes the best conditions observed at each instant
	// (lowest latency and per-byte costs, lowest loss).
	Optimistic core.Trace
	// Typical takes the per-instant median.
	Typical core.Trace
	// Pessimistic takes the worst conditions observed at each instant.
	Pessimistic core.Trace
}

// Envelope reduces the family on a fixed step grid spanning the longest
// trace. Each member trace is sampled (clamping past its end, as a
// stationary host would experience), so families whose traversals took
// slightly different times still align, mirroring the paper's
// inter-checkpoint normalization.
func (f Family) Envelope(step time.Duration) (*Envelope, error) {
	if len(f) == 0 {
		return nil, ErrEmptyFamily
	}
	if step <= 0 {
		step = time.Second
	}
	var span time.Duration
	for _, tr := range f {
		if err := tr.Validate(); err != nil {
			return nil, err
		}
		if d := tr.TotalDuration(); d > span {
			span = d
		}
	}
	env := &Envelope{}
	for at := time.Duration(0); at < span; at += step {
		var fs, vbs, vrs, ls []float64
		for _, tr := range f {
			tu := tr.At(at, false)
			fs = append(fs, float64(tu.F))
			vbs = append(vbs, float64(tu.Vb))
			vrs = append(vrs, float64(tu.Vr))
			ls = append(ls, tu.L)
		}
		d := step
		if remaining := span - at; remaining < d {
			d = remaining
		}
		mk := func(pick func([]float64) float64) core.Tuple {
			return core.Tuple{
				D: d,
				DelayParams: core.DelayParams{
					F:  time.Duration(pick(fs)),
					Vb: core.PerByte(pick(vbs)),
					Vr: core.PerByte(pick(vrs)),
				},
				L: clampLoss(pick(ls)),
			}
		}
		env.Optimistic = append(env.Optimistic, mk(minOf))
		env.Typical = append(env.Typical, mk(medianOf))
		env.Pessimistic = append(env.Pessimistic, mk(maxOf))
	}
	return env, nil
}

func clampLoss(l float64) float64 {
	if l < 0 {
		return 0
	}
	if l > core.MaxLoss {
		return core.MaxLoss
	}
	return l
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func medianOf(xs []float64) float64 {
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}
