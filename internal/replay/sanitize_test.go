package replay

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/obs"
)

func goodTuple() core.Tuple {
	return core.Tuple{
		D:           time.Second,
		DelayParams: core.DelayParams{F: 2 * time.Millisecond, Vb: 5000, Vr: 800},
		L:           0.01,
	}
}

func TestSanitizeCleanPassthrough(t *testing.T) {
	in := core.Trace{goodTuple(), goodTuple()}
	out, rep, err := Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Kept != 2 {
		t.Fatalf("report = %s", rep)
	}
	if len(out) != 2 || out[0] != in[0] {
		t.Fatalf("clean tuples must pass through unchanged")
	}
}

func TestSanitizeClampsRepairable(t *testing.T) {
	neg := goodTuple()
	neg.F = -time.Millisecond
	neg.Vb = -1
	lossy := goodTuple()
	lossy.L = 1.7
	in := core.Trace{neg, lossy}
	out, rep, err := Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kept != 2 || rep.Clamped != 2 || rep.Dropped != 0 {
		t.Fatalf("report = %s", rep)
	}
	if out[0].F != 0 || out[0].Vb != 0 {
		t.Fatalf("negative costs must clamp to zero: %v", out[0])
	}
	if out[1].L != core.MaxLoss {
		t.Fatalf("loss %v, want MaxLoss", out[1].L)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// The input was not modified.
	if in[0].F != -time.Millisecond {
		t.Fatal("Sanitize mutated its input")
	}
}

func TestSanitizeDropsUnrepairable(t *testing.T) {
	nan := goodTuple()
	nan.Vb = core.PerByte(math.NaN())
	inf := goodTuple()
	inf.Vr = core.PerByte(math.Inf(1))
	zero := goodTuple()
	zero.D = 0
	in := core.Trace{goodTuple(), nan, inf, zero}
	out, rep, err := Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kept != 1 || rep.Dropped != 3 {
		t.Fatalf("report = %s", rep)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSanitizeAllDropped(t *testing.T) {
	bad := goodTuple()
	bad.D = -time.Second
	_, rep, err := Sanitize(core.Trace{bad})
	if !errors.Is(err, ErrNoTuples) {
		t.Fatalf("err = %v, want ErrNoTuples", err)
	}
	if rep.Dropped != 1 {
		t.Fatalf("report = %s", rep)
	}
}

func TestReadLenientSkipsBadLines(t *testing.T) {
	input := FileHeader + "\n" +
		"1000000 2000 5000.000 800.000 0.010000\n" +
		"not numbers at all\n" +
		"1000000 2000 NaN 800.0 0.5\n" + // NaN Vb: parses, then dropped
		"1000000 -5 5000.0 800.0 2.0\n" + // negative F, loss > 1: clamped
		"1000000 2000 5000.000 800.000 0.000000\n"
	tr, rep, err := ReadLenient(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 3 {
		t.Fatalf("kept %d tuples, want 3", len(tr))
	}
	if rep.Dropped != 2 || rep.Clamped != 1 {
		t.Fatalf("report = %s, want 2 dropped 1 clamped", rep)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Strict Read must reject the same input.
	if _, err := Read(strings.NewReader(input)); err == nil {
		t.Fatal("strict Read accepted a dirty trace")
	}
}

func TestReadLenientStillNeedsHeader(t *testing.T) {
	if _, _, err := ReadLenient(strings.NewReader("1 2 3 4 5\n")); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
}

func TestReadLenientNothingUsable(t *testing.T) {
	input := FileHeader + "\ngarbage\nmore garbage\n"
	_, rep, err := ReadLenient(strings.NewReader(input))
	if !errors.Is(err, ErrNoTuples) {
		t.Fatalf("err = %v, want ErrNoTuples", err)
	}
	if rep.Dropped != 2 {
		t.Fatalf("report = %s", rep)
	}
}

func TestSanitizeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	defer EnableMetrics(nil)

	bad := goodTuple()
	bad.Vb = core.PerByte(math.NaN())
	clamp := goodTuple()
	clamp.L = -0.5
	if _, _, err := Sanitize(core.Trace{goodTuple(), bad, clamp}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("tracemod_replay_tuples_dropped_total", "").Load(); got != 1 {
		t.Fatalf("dropped counter = %d, want 1", got)
	}
	if got := reg.Counter("tracemod_replay_tuples_clamped_total", "").Load(); got != 1 {
		t.Fatalf("clamped counter = %d, want 1", got)
	}
}
