// Package replay handles replay traces as artifacts: a line-oriented text
// serialization for storing and exchanging them, and synthetic trace
// generators (constant, step, impulse, ramp) for the paper's Section 6
// application of modulating with conditions no real network conveniently
// produces — including the WaveLAN-like synthetic trace behind Figure 1.
package replay

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/obs"
)

// Package-level telemetry, enabled by EnableMetrics. The counters are
// nil-safe, so an un-instrumented process pays one branch per trace (not
// per tuple beyond an Add) and no allocation.
var (
	tuplesRead      *obs.Counter
	tuplesWritten   *obs.Counter
	tuplesSynthetic *obs.Counter
	tracesRead      *obs.Counter
	readErrors      *obs.Counter
	tuplesDropped   *obs.Counter
	tuplesClamped   *obs.Counter
)

// EnableMetrics registers the replay package's counters (names under
// tracemod_replay_*) on reg, after which Read, Write, and the synthetic
// generators account the tuples they handle. Passing nil disables them
// again.
func EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		tuplesRead, tuplesWritten, tuplesSynthetic, tracesRead, readErrors = nil, nil, nil, nil, nil
		tuplesDropped, tuplesClamped = nil, nil
		return
	}
	tuplesRead = reg.Counter("tracemod_replay_tuples_read_total", "Tuples parsed from serialized replay traces.")
	tuplesWritten = reg.Counter("tracemod_replay_tuples_written_total", "Tuples serialized to replay trace files.")
	tuplesSynthetic = reg.Counter("tracemod_replay_tuples_synthetic_total", "Tuples emitted by the synthetic generators.")
	tracesRead = reg.Counter("tracemod_replay_traces_read_total", "Replay trace files parsed successfully.")
	readErrors = reg.Counter("tracemod_replay_read_errors_total", "Replay trace parses that failed.")
	tuplesDropped = reg.Counter("tracemod_replay_tuples_dropped_total", "Tuples rejected by sanitization or lenient parsing.")
	tuplesClamped = reg.Counter("tracemod_replay_tuples_clamped_total", "Tuples repaired in place by sanitization.")
}

// FileHeader opens every serialized replay trace.
const FileHeader = "#tracemod-replay v1"

// Write serializes a replay trace: a header line, then one tuple per line
// as "duration_us F_us Vb_ns_per_byte Vr_ns_per_byte loss".
func Write(w io.Writer, tr core.Trace) error {
	sw, err := NewStreamWriter(w)
	if err != nil {
		return err
	}
	for _, t := range tr {
		if err := sw.Append(t); err != nil {
			return err
		}
	}
	return sw.Flush()
}

// StreamWriter serializes a replay trace incrementally, tuple by tuple,
// so a live distillation can be tailed from the file while it grows.
// Because the format is line-oriented with no trailer, a trace written
// through a StreamWriter is byte-identical to one written by Write, and
// every Flush leaves a well-formed (if shorter) trace on disk.
type StreamWriter struct {
	bw      *bufio.Writer
	written int64
}

// NewStreamWriter writes the file header immediately and returns a
// writer ready to Append tuples.
func NewStreamWriter(w io.Writer) (*StreamWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, FileHeader); err != nil {
		return nil, err
	}
	return &StreamWriter{bw: bw}, nil
}

// Append serializes one tuple.
func (sw *StreamWriter) Append(t core.Tuple) error {
	_, err := fmt.Fprintf(sw.bw, "%d %d %.3f %.3f %.6f\n",
		t.D.Microseconds(), t.F.Microseconds(), float64(t.Vb), float64(t.Vr), t.L)
	if err != nil {
		return err
	}
	sw.written++
	return nil
}

// Flush pushes buffered lines to the underlying writer and accounts the
// tuples written since the previous Flush. Call after each batch of
// appends a tailing reader should see, and once before discarding the
// writer.
func (sw *StreamWriter) Flush() error {
	if err := sw.bw.Flush(); err != nil {
		return err
	}
	tuplesWritten.Add(sw.written)
	sw.written = 0
	return nil
}

// ErrBadHeader is returned when the input is not a replay trace.
var ErrBadHeader = errors.New("replay: missing or unknown header")

// Read parses a serialized replay trace. Blank lines and #-comments after
// the header are ignored.
func Read(r io.Reader) (core.Trace, error) {
	tr, err := read(r)
	if err != nil {
		readErrors.Inc()
		return nil, err
	}
	tracesRead.Inc()
	tuplesRead.Add(int64(len(tr)))
	return tr, nil
}

// headerScanner wraps the line-scanning shared by the strict and lenient
// parsers: header check, blank/comment skipping, line numbering.
type headerScanner struct {
	sc   *bufio.Scanner
	line int
}

func newHeaderScanner(r io.Reader) *headerScanner {
	return &headerScanner{sc: bufio.NewScanner(r)}
}

func (h *headerScanner) expectHeader() error {
	if !h.sc.Scan() || strings.TrimSpace(h.sc.Text()) != FileHeader {
		return ErrBadHeader
	}
	h.line = 1
	return nil
}

// next returns the next non-blank, non-comment line.
func (h *headerScanner) next() (string, bool) {
	for h.sc.Scan() {
		h.line++
		text := strings.TrimSpace(h.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		return text, true
	}
	return "", false
}

func (h *headerScanner) err() error { return h.sc.Err() }

// parseTupleLine parses one "duration_us F_us Vb Vr loss" line.
func parseTupleLine(text string) (core.Tuple, error) {
	var dUS, fUS int64
	var vb, vr, loss float64
	if _, err := fmt.Sscanf(text, "%d %d %f %f %f", &dUS, &fUS, &vb, &vr, &loss); err != nil {
		return core.Tuple{}, err
	}
	return core.Tuple{
		D: time.Duration(dUS) * time.Microsecond,
		DelayParams: core.DelayParams{
			F:  time.Duration(fUS) * time.Microsecond,
			Vb: core.PerByte(vb),
			Vr: core.PerByte(vr),
		},
		L: loss,
	}, nil
}

func read(r io.Reader) (core.Trace, error) {
	sc := newHeaderScanner(r)
	if err := sc.expectHeader(); err != nil {
		return nil, err
	}
	var tr core.Trace
	for {
		text, ok := sc.next()
		if !ok {
			break
		}
		t, err := parseTupleLine(text)
		if err != nil {
			return nil, fmt.Errorf("replay: line %d: %w", sc.line, err)
		}
		tr = append(tr, t)
	}
	if err := sc.err(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// ReadFile parses the serialized replay trace at path.
func ReadFile(path string) (core.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Constant produces a trace holding params and loss for dur, in step-sized
// tuples.
func Constant(params core.DelayParams, loss float64, dur, step time.Duration) core.Trace {
	if step <= 0 {
		step = time.Second
	}
	var tr core.Trace
	for at := time.Duration(0); at < dur; at += step {
		d := step
		if remaining := dur - at; remaining < d {
			d = remaining
		}
		tr = append(tr, core.Tuple{D: d, DelayParams: params, L: loss})
	}
	tuplesSynthetic.Add(int64(len(tr)))
	return tr
}

// Step switches from a to b at switchAt, running dur total (the step
// variation of the paper's synthetic-trace application).
func Step(a, b core.DelayParams, lossA, lossB float64, switchAt, dur, step time.Duration) core.Trace {
	first := Constant(a, lossA, switchAt, step)
	second := Constant(b, lossB, dur-switchAt, step)
	return append(first, second...)
}

// Impulse runs base conditions with a spike of width starting at, for dur
// total (the impulse variation of the synthetic-trace application).
func Impulse(base, spike core.DelayParams, lossBase, lossSpike float64, at, width, dur, step time.Duration) core.Trace {
	tr := Constant(base, lossBase, at, step)
	tr = append(tr, Constant(spike, lossSpike, width, step)...)
	return append(tr, Constant(base, lossBase, dur-at-width, step)...)
}

// Ramp interpolates linearly from a to b over dur.
func Ramp(a, b core.DelayParams, loss float64, dur, step time.Duration) core.Trace {
	if step <= 0 {
		step = time.Second
	}
	var tr core.Trace
	n := int(dur / step)
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		if n == 1 {
			frac = 0
		}
		lerp := func(x, y float64) float64 { return x + (y-x)*frac }
		tr = append(tr, core.Tuple{
			D: step,
			DelayParams: core.DelayParams{
				F:  time.Duration(lerp(float64(a.F), float64(b.F))),
				Vb: core.PerByte(lerp(float64(a.Vb), float64(b.Vb))),
				Vr: core.PerByte(lerp(float64(a.Vr), float64(b.Vr))),
			},
			L: loss,
		})
	}
	tuplesSynthetic.Add(int64(len(tr)))
	return tr
}

// WaveLANLike returns the synthetic trace used for Figure 1: performance
// "close to that of a WaveLAN device" — about 1.5 Mb/s bottleneck
// bandwidth, a couple of milliseconds of latency, light residual cost, and
// a little loss.
func WaveLANLike(dur time.Duration) core.Trace {
	params := core.DelayParams{
		F:  2 * time.Millisecond,
		Vb: core.PerByteFromBandwidth(1.5e6),
		Vr: core.PerByte(300),
	}
	return Constant(params, 0.01, dur, time.Second)
}

// SlowNetLike returns the much slower synthetic network used to validate
// that delay compensation is independent of the traced network's speed
// (Section 3.3): roughly a 100 Kb/s wide-area link.
func SlowNetLike(dur time.Duration) core.Trace {
	params := core.DelayParams{
		F:  40 * time.Millisecond,
		Vb: core.PerByteFromBandwidth(100e3),
		Vr: core.PerByte(2000),
	}
	return Constant(params, 0.02, dur, time.Second)
}
