package replay

import (
	"bytes"
	"testing"
)

// FuzzReplayParse feeds arbitrary text to both the strict and the lenient
// parser. Invariants: neither panics; whatever either returns without
// error passes core validation; and the lenient parser accepts everything
// the strict one does.
func FuzzReplayParse(f *testing.F) {
	f.Add([]byte(FileHeader + "\n1000000 2000 5000.000 800.000 0.010000\n"))
	f.Add([]byte(FileHeader + "\n1000000 2000 NaN Inf -0.5\n"))
	f.Add([]byte("no header at all\n"))

	f.Fuzz(func(t *testing.T, input []byte) {
		strict, strictErr := Read(bytes.NewReader(input))
		if strictErr == nil {
			if err := strict.Validate(); err != nil {
				t.Fatalf("strict Read returned an invalid trace: %v", err)
			}
		}
		lenient, _, err := ReadLenient(bytes.NewReader(input))
		if err == nil {
			if verr := lenient.Validate(); verr != nil {
				t.Fatalf("ReadLenient returned an invalid trace: %v", verr)
			}
		}
		if strictErr == nil && err != nil {
			t.Fatalf("lenient parser rejected input the strict parser accepted: %v", err)
		}
	})
}
