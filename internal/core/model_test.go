package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPerByteConversions(t *testing.T) {
	v := PerByteFromBandwidth(2e6) // 2 Mb/s
	if math.Abs(float64(v)-4000) > 1e-9 {
		t.Fatalf("2Mb/s = %v ns/B, want 4000", float64(v))
	}
	if math.Abs(v.BitsPerSec()-2e6) > 1e-6 {
		t.Fatalf("round-trip = %v", v.BitsPerSec())
	}
	if v.Cost(1500) != 6*time.Millisecond {
		t.Fatalf("1500B at 2Mb/s = %v, want 6ms", v.Cost(1500))
	}
	if !math.IsInf(float64(PerByteFromBandwidth(0)), 1) {
		t.Fatal("zero bandwidth should be infinite cost")
	}
	if !math.IsInf(PerByte(0).BitsPerSec(), 1) {
		t.Fatal("zero cost should be infinite bandwidth")
	}
}

func TestDelayParams(t *testing.T) {
	d := DelayParams{F: 2 * time.Millisecond, Vb: 4000, Vr: 1000}
	if d.V() != 5000 {
		t.Fatalf("V = %v", d.V())
	}
	// Δ = F + sV = 2ms + 100*5000ns = 2.5ms
	if d.OneWayDelay(100) != 2500*time.Microsecond {
		t.Fatalf("one-way = %v", d.OneWayDelay(100))
	}
	if d.RoundTrip(100) != 5*time.Millisecond {
		t.Fatalf("rtt = %v", d.RoundTrip(100))
	}
	if !d.Valid() {
		t.Fatal("should be valid")
	}
	if (DelayParams{F: -1}).Valid() {
		t.Fatal("negative F invalid")
	}
	if (DelayParams{Vb: PerByte(math.NaN())}).Valid() {
		t.Fatal("NaN Vb invalid")
	}
}

func TestTupleValid(t *testing.T) {
	good := Tuple{D: time.Second, DelayParams: DelayParams{F: time.Millisecond, Vb: 100, Vr: 10}, L: 0.1}
	if !good.Valid() {
		t.Fatal("good tuple invalid")
	}
	for _, bad := range []Tuple{
		{D: 0, DelayParams: good.DelayParams},
		{D: time.Second, DelayParams: good.DelayParams, L: 1.0},
		{D: time.Second, DelayParams: good.DelayParams, L: -0.1},
		{D: time.Second, DelayParams: DelayParams{Vb: -5}},
	} {
		if bad.Valid() {
			t.Fatalf("tuple %v should be invalid", bad)
		}
	}
}

func mkTrace() Trace {
	return Trace{
		{D: time.Second, DelayParams: DelayParams{F: time.Millisecond, Vb: 100, Vr: 0}, L: 0},
		{D: 2 * time.Second, DelayParams: DelayParams{F: 2 * time.Millisecond, Vb: 200, Vr: 50}, L: 0.5},
	}
}

func TestTraceBasics(t *testing.T) {
	tr := mkTrace()
	if tr.TotalDuration() != 3*time.Second {
		t.Fatal("duration wrong")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Trace{}).Validate(); err == nil {
		t.Fatal("empty trace should not validate")
	}
	bad := mkTrace()
	bad[1].L = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("bad tuple should not validate")
	}
}

func TestTraceAt(t *testing.T) {
	tr := mkTrace()
	if tr.At(0, false).F != time.Millisecond {
		t.Fatal("t=0 should be first tuple")
	}
	if tr.At(time.Second, false).F != 2*time.Millisecond {
		t.Fatal("t=1s should be second tuple")
	}
	if tr.At(10*time.Second, false).F != 2*time.Millisecond {
		t.Fatal("past end without loop should clamp to last")
	}
	if tr.At(3*time.Second, true).F != time.Millisecond {
		t.Fatal("looped t=3s should wrap to first tuple")
	}
	if tr.At(4500*time.Millisecond, true).F != 2*time.Millisecond {
		t.Fatal("looped t=4.5s should be second tuple")
	}
}

func TestTraceScale(t *testing.T) {
	tr := mkTrace().Scale(2)
	if tr[0].F != 2*time.Millisecond || tr[0].Vb != 200 {
		t.Fatal("scale should double delay parameters")
	}
	if tr[1].L != 0.5 {
		t.Fatal("scale must not touch loss")
	}
	if tr[0].D != time.Second {
		t.Fatal("scale must not touch durations")
	}
}

func TestTraceMeanVb(t *testing.T) {
	tr := mkTrace()
	// (100*1 + 200*2)/3
	want := (100.0 + 400.0) / 3.0
	if math.Abs(float64(tr.MeanVb())-want) > 1e-9 {
		t.Fatalf("meanVb = %v, want %v", tr.MeanVb(), want)
	}
	if (Trace{}).MeanVb() != 0 {
		t.Fatal("empty trace meanVb should be 0")
	}
}

func TestSolveTripletExact(t *testing.T) {
	// Construct observations from known parameters and check recovery.
	truth := DelayParams{F: 3 * time.Millisecond, Vb: 4000, Vr: 1000}
	s1, s2 := 64, 1024
	o := TripletObs{
		S1: s1, S2: s2,
		T1: truth.RoundTrip(s1),
		T2: truth.RoundTrip(s2),
		T3: truth.RoundTrip(s2) + truth.Vb.Cost(s2),
	}
	got, err := SolveTriplet(o)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got.F-truth.F)) > 1e3 { // within 1µs
		t.Fatalf("F = %v, want %v", got.F, truth.F)
	}
	if math.Abs(float64(got.Vb-truth.Vb)) > 1 || math.Abs(float64(got.Vr-truth.Vr)) > 1 {
		t.Fatalf("Vb,Vr = %v,%v want %v,%v", got.Vb, got.Vr, truth.Vb, truth.Vr)
	}
}

func TestSolveTripletNegative(t *testing.T) {
	// t2 < t1 makes V negative: conditions changed mid-triplet.
	o := TripletObs{S1: 64, S2: 1024, T1: 10 * time.Millisecond, T2: 5 * time.Millisecond, T3: 6 * time.Millisecond}
	if _, err := SolveTriplet(o); err != ErrNegativeParams {
		t.Fatalf("err = %v, want ErrNegativeParams", err)
	}
}

func TestSolveTripletArgErrors(t *testing.T) {
	if _, err := SolveTriplet(TripletObs{S1: 100, S2: 100, T1: 1, T2: 1, T3: 1}); err == nil {
		t.Fatal("equal sizes should error")
	}
	if _, err := SolveTriplet(TripletObs{S1: 64, S2: 1024}); err == nil {
		t.Fatal("incomplete triplet should error")
	}
}

func TestCorrectTriplet(t *testing.T) {
	prev := DelayParams{F: 2 * time.Millisecond, Vb: 4000, Vr: 1000}
	// Observed t1 is 4ms above expected: correction adds 2ms to F.
	o := TripletObs{S1: 64, S2: 1024, T1: prev.RoundTrip(64) + 4*time.Millisecond, T2: 1, T3: 1}
	got := CorrectTriplet(prev, o)
	if got.F != prev.F+2*time.Millisecond {
		t.Fatalf("F = %v, want %v", got.F, prev.F+2*time.Millisecond)
	}
	if got.Vb != prev.Vb || got.Vr != prev.Vr {
		t.Fatal("correction must reuse previous Vb, Vr")
	}
	// Observed faster than expected by more than 2F: F floors at 0.
	o2 := TripletObs{S1: 64, S2: 1024, T1: 0, T2: 1, T3: 1}
	if CorrectTriplet(prev, o2).F != 0 {
		t.Fatal("F must not go negative")
	}
}

func TestEstimateLoss(t *testing.T) {
	if EstimateLoss(100, 100) != 0 {
		t.Fatal("no loss when all arrive")
	}
	// b = P²a with P=0.9: b = 81 -> L = 0.1
	if math.Abs(EstimateLoss(100, 81)-0.1) > 1e-12 {
		t.Fatalf("loss = %v, want 0.1", EstimateLoss(100, 81))
	}
	if got := EstimateLoss(100, 0); got != MaxLoss {
		t.Fatalf("total loss clamps to MaxLoss, got %v", got)
	}
	if EstimateLoss(0, 0) != 0 {
		t.Fatal("zero sent means no estimate")
	}
	if EstimateLoss(10, 20) != 0 {
		t.Fatal("received > sent clamps to no loss")
	}
	if EstimateLoss(10, -1) != MaxLoss {
		t.Fatal("negative received clamps to full loss")
	}
}

// Property: SolveTriplet recovers parameters generated by the model itself,
// for any valid parameter set.
func TestSolveTripletInverseProperty(t *testing.T) {
	f := func(fMs uint16, vb, vr uint16) bool {
		truth := DelayParams{
			F:  time.Duration(fMs%200) * time.Millisecond / 10,
			Vb: PerByte(vb%20000) + 1,
			Vr: PerByte(vr % 8000),
		}
		s1, s2 := 64, 1024
		o := TripletObs{
			S1: s1, S2: s2,
			T1: truth.RoundTrip(s1),
			T2: truth.RoundTrip(s2),
			T3: truth.RoundTrip(s2) + truth.Vb.Cost(s2),
		}
		got, err := SolveTriplet(o)
		if err != nil {
			return false
		}
		return math.Abs(float64(got.F-truth.F)) < 2e3 &&
			math.Abs(float64(got.Vb-truth.Vb)) < 2 &&
			math.Abs(float64(got.Vr-truth.Vr)) < 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: EstimateLoss is monotone decreasing in received count and always
// within [0, MaxLoss].
func TestEstimateLossMonotoneProperty(t *testing.T) {
	f := func(sent uint8) bool {
		n := int(sent%50) + 1
		prev := math.Inf(1)
		for b := 0; b <= n; b++ {
			l := EstimateLoss(n, b)
			if l < 0 || l > MaxLoss || l > prev+1e-12 {
				return false
			}
			prev = l
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Trace.At with loop=true always returns a tuple belonging to the
// trace, for any offset.
func TestTraceAtLoopProperty(t *testing.T) {
	tr := mkTrace()
	f := func(off int64) bool {
		got := tr.At(time.Duration(off), true)
		for _, tu := range tr {
			if got == tu {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
