// Package core implements the paper's simple, instantaneous network model
// (Section 3.2.1) and the arithmetic shared by distillation and modulation:
// delay parameters F, Vb, Vr, loss probability L, network-quality tuples
// ⟨d, F, Vb, Vr, L⟩, replay traces, and the equation solving of
// Section 3.2.2 (Eqs. 1-10).
package core

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// PerByte is a variable per-byte cost: the v terms of Eq. 1, expressed in
// nanoseconds per byte. It is the inverse of instantaneous bandwidth.
type PerByte float64

// PerByteFromBandwidth converts a bandwidth in bits per second into a
// per-byte cost.
func PerByteFromBandwidth(bitsPerSec float64) PerByte {
	if bitsPerSec <= 0 {
		return PerByte(math.Inf(1))
	}
	return PerByte(8e9 / bitsPerSec)
}

// BitsPerSec converts the per-byte cost back to a bandwidth in bits/second.
func (v PerByte) BitsPerSec() float64 {
	if v <= 0 {
		return math.Inf(1)
	}
	return 8e9 / float64(v)
}

// Cost returns the transmission time for size bytes at this per-byte cost.
func (v PerByte) Cost(size int) time.Duration {
	return time.Duration(float64(v) * float64(size))
}

// DelayParams are the delay components of one model interval: F is the
// fixed latency (sum of queueing, per-packet processing, and propagation
// delays); Vb is the bottleneck per-byte cost; Vr the residual per-byte
// cost. Total per-byte cost V = Vb + Vr (Eq. 4).
type DelayParams struct {
	F  time.Duration
	Vb PerByte
	Vr PerByte
}

// V returns the total per-byte cost Vb + Vr.
func (d DelayParams) V() PerByte { return d.Vb + d.Vr }

// OneWayDelay returns the single-packet one-way delay Δ = F + sV (Eq. 3)
// for a packet of size bytes, ignoring queueing behind other packets.
func (d DelayParams) OneWayDelay(size int) time.Duration {
	return d.F + d.V().Cost(size)
}

// RoundTrip returns 2(F + sV), the model's round-trip time for an
// echo-style exchange of equal-size packets (Eqs. 5-6).
func (d DelayParams) RoundTrip(size int) time.Duration {
	return 2 * d.OneWayDelay(size)
}

// Valid reports whether every component is non-negative and finite.
func (d DelayParams) Valid() bool {
	return d.F >= 0 && d.Vb >= 0 && d.Vr >= 0 &&
		!math.IsInf(float64(d.Vb), 0) && !math.IsInf(float64(d.Vr), 0) &&
		!math.IsNaN(float64(d.Vb)) && !math.IsNaN(float64(d.Vr))
}

// Tuple is one network-quality tuple ⟨d, F, Vb, Vr, L⟩: the model holds for
// duration D, during which every packet experiences delay parameters
// (F, Vb, Vr) and an independent drop probability L.
type Tuple struct {
	D time.Duration
	DelayParams
	L float64
}

func (t Tuple) String() string {
	return fmt.Sprintf("⟨d=%v F=%v Vb=%.1fns/B Vr=%.1fns/B L=%.3f⟩",
		t.D, t.F, float64(t.Vb), float64(t.Vr), t.L)
}

// Valid reports whether the tuple is physically meaningful.
func (t Tuple) Valid() bool {
	return t.D > 0 && t.DelayParams.Valid() && t.L >= 0 && t.L < 1
}

// Trace is a replay trace: the sequence S of network-quality tuples
// produced by distillation and consumed by modulation.
type Trace []Tuple

// TotalDuration returns the sum of tuple durations.
func (tr Trace) TotalDuration() time.Duration {
	var d time.Duration
	for _, t := range tr {
		d += t.D
	}
	return d
}

// Validate checks every tuple; it returns an error naming the first
// offending index.
func (tr Trace) Validate() error {
	if len(tr) == 0 {
		return errors.New("core: empty replay trace")
	}
	for i, t := range tr {
		if !t.Valid() {
			return fmt.Errorf("core: invalid tuple %d: %v", i, t)
		}
	}
	return nil
}

// At returns the tuple in effect at offset d from the start of the trace.
// If loop is true the trace repeats; otherwise offsets past the end return
// the final tuple (the paper's daemon may "write a file of tuples once...
// or loop over the file until interrupted").
func (tr Trace) At(d time.Duration, loop bool) Tuple {
	if len(tr) == 0 {
		panic("core: At on empty trace")
	}
	total := tr.TotalDuration()
	if loop && total > 0 {
		d = d % total
		if d < 0 {
			d += total
		}
	}
	for _, t := range tr {
		if d < t.D {
			return t
		}
		d -= t.D
	}
	return tr[len(tr)-1]
}

// Scale returns a copy of the trace with every delay parameter multiplied
// by k (loss is left untouched). Used by synthetic-trace experiments.
func (tr Trace) Scale(k float64) Trace {
	out := make(Trace, len(tr))
	for i, t := range tr {
		out[i] = Tuple{
			D: t.D,
			DelayParams: DelayParams{
				F:  time.Duration(float64(t.F) * k),
				Vb: PerByte(float64(t.Vb) * k),
				Vr: PerByte(float64(t.Vr) * k),
			},
			L: t.L,
		}
	}
	return out
}

// MeanVb returns the duration-weighted mean bottleneck per-byte cost of the
// trace: the quantity delay compensation measures on the physical
// modulation network (Section 3.3).
func (tr Trace) MeanVb() PerByte {
	var sum float64
	var dur float64
	for _, t := range tr {
		sum += float64(t.Vb) * float64(t.D)
		dur += float64(t.D)
	}
	if dur == 0 {
		return 0
	}
	return PerByte(sum / dur)
}

// WeightedLoss returns the duration-weighted mean loss probability of the
// trace: the drop rate a faithful replay should exhibit over many packets
// uniformly spread in time — the reference for the drop-accuracy SLO.
func (tr Trace) WeightedLoss() float64 {
	var sum float64
	var dur float64
	for _, t := range tr {
		sum += t.L * float64(t.D)
		dur += float64(t.D)
	}
	if dur == 0 {
		return 0
	}
	return sum / dur
}

// TripletObs is one observation of the known workload (Section 3.2.2): the
// round-trip times of a small echo of size S1 followed by two back-to-back
// large echoes of size S2.
type TripletObs struct {
	T1, T2, T3 time.Duration // round-trip times; 0 means the packet was lost
	S1, S2     int           // payload-carrying packet sizes in bytes
}

// Complete reports whether all three round-trips were observed.
func (o TripletObs) Complete() bool { return o.T1 > 0 && o.T2 > 0 && o.T3 > 0 }

// ErrNegativeParams is returned by SolveTriplet when the equations yield a
// physically meaningless (negative) parameter; the caller applies the
// paper's non-cascading correction (Section 3.2.2).
var ErrNegativeParams = errors.New("core: triplet solution has negative parameters")

// SolveTriplet solves Eqs. 5-8 for one triplet:
//
//	t1 = 2(F + s1·V)
//	t2 = 2(F + s2·V)
//	t3 = t2 + s2·Vb
//
// giving V = (t2−t1)/(2(s2−s1)), F = t1/2 − s1·V, Vb = (t3−t2)/s2, and
// Vr = V − Vb. It returns ErrNegativeParams if any parameter is negative,
// with the raw (uncorrected) values still populated so the caller can
// inspect them.
func SolveTriplet(o TripletObs) (DelayParams, error) {
	if o.S2 <= o.S1 || o.S1 <= 0 {
		return DelayParams{}, fmt.Errorf("core: triplet sizes must satisfy 0 < s1 < s2, got %d, %d", o.S1, o.S2)
	}
	if !o.Complete() {
		return DelayParams{}, errors.New("core: triplet incomplete")
	}
	v := float64(o.T2-o.T1) / (2 * float64(o.S2-o.S1))
	f := float64(o.T1)/2 - float64(o.S1)*v
	vb := float64(o.T3-o.T2) / float64(o.S2)
	vr := v - vb
	p := DelayParams{F: time.Duration(f), Vb: PerByte(vb), Vr: PerByte(vr)}
	if !p.Valid() {
		return p, ErrNegativeParams
	}
	return p, nil
}

// CorrectTriplet applies the paper's fallback when SolveTriplet fails: it
// reuses the previous interval's Vb and Vr, and folds the difference
// between the expected and observed t1 into F, "reasoning that short-term
// performance variation is most likely due to media access delay". prev
// must come from an uncorrected estimate to avoid cascading.
func CorrectTriplet(prev DelayParams, o TripletObs) DelayParams {
	expected := prev.RoundTrip(o.S1)
	delta := (o.T1 - expected) / 2
	f := prev.F + delta
	if f < 0 {
		f = 0
	}
	return DelayParams{F: f, Vb: prev.Vb, Vr: prev.Vr}
}

// EstimateLoss implements Eqs. 9-10: of a echoes sent, b replies returned,
// so with per-packet survival probability P, b = P²a and
// L = 1 − sqrt(b/a). The result is clamped to [0, MaxLoss].
func EstimateLoss(sent, received int) float64 {
	if sent <= 0 {
		return 0
	}
	if received > sent {
		received = sent
	}
	if received < 0 {
		received = 0
	}
	l := 1 - math.Sqrt(float64(received)/float64(sent))
	if l < 0 {
		l = 0
	}
	if l > MaxLoss {
		l = MaxLoss
	}
	return l
}

// MaxLoss caps the loss probability below 1 so modulation always makes
// eventual progress (an all-loss interval would otherwise wedge reliable
// transports forever, which the real network never does either).
const MaxLoss = 0.995
