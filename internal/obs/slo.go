// The SLO engine: declarative service-level objectives evaluated on
// demand against live metrics. An objective is either a quantile bound on
// a histogram ("p99 wheel fire lateness ≤ 20ms"), a compliance-fraction
// bound ("≥ 99.9% of deliveries within 2 ticks"), or an arbitrary ratio
// computed by the caller ("≥ 95% of sessions within drop-accuracy
// tolerance"). Evaluate folds the objectives into a report with a single
// [0,1] health score, which emud exports at /v1/slo and turns into a
// readiness verdict at /v1/health.
package obs

import (
	"sync"
	"time"
)

// SLOKind discriminates how an objective is measured.
type SLOKind string

// The objective kinds.
const (
	// SLOQuantile: Hist's Quantile(Quantile) must be ≤ Threshold.
	SLOQuantile SLOKind = "quantile"
	// SLOCompliance: Hist's Compliance(Threshold) must be ≥ Target.
	SLOCompliance SLOKind = "compliance"
	// SLORatio: Ratio() must be ≥ Target (caller-computed indicator;
	// return value is clamped to [0,1] at evaluation).
	SLORatio SLOKind = "ratio"
)

// SLO is one declared objective.
type SLO struct {
	Name string
	Help string
	Kind SLOKind
	// Critical objectives gate readiness: /v1/health reports not-ready if
	// any critical objective is unmet.
	Critical bool

	// Quantile/Compliance source.
	Hist      *Histogram
	Quantile  float64       // for SLOQuantile: which quantile (e.g. 0.99)
	Threshold time.Duration // deadline bound

	// Ratio source (SLORatio). May return ok=false when the indicator has
	// no data yet; the objective then reports Met with a zero sample.
	Ratio func() (value float64, ok bool)

	// Target is the minimum acceptable value for SLOCompliance and
	// SLORatio (ignored for SLOQuantile, where Threshold is the bound).
	Target float64
}

// SLOResult is one evaluated objective.
type SLOResult struct {
	Name     string  `json:"name"`
	Help     string  `json:"help,omitempty"`
	Kind     SLOKind `json:"kind"`
	Critical bool    `json:"critical"`
	// Value is the measured indicator: seconds for SLOQuantile, a [0,1]
	// fraction otherwise.
	Value float64 `json:"value"`
	// Objective is the bound: seconds for SLOQuantile, else the Target
	// fraction.
	Objective float64 `json:"objective"`
	Met       bool    `json:"met"`
	// Samples is the observation count behind the measurement (0 for a
	// ratio with no data; such objectives are vacuously met).
	Samples int64 `json:"samples"`
}

// SLOReport is the full evaluation.
type SLOReport struct {
	// Score is the fraction of objectives met, in [0,1] (1 when none are
	// declared).
	Score float64 `json:"score"`
	// Ready is true when every critical objective is met.
	Ready      bool        `json:"ready"`
	Objectives []SLOResult `json:"objectives"`
}

// SLOSet is a mutable collection of objectives. Nil-safe like the rest of
// the package: a nil set accepts no objectives and evaluates to a
// perfectly healthy report.
type SLOSet struct {
	mu   sync.Mutex
	slos []*SLO
}

// NewSLOSet creates an empty set.
func NewSLOSet() *SLOSet { return &SLOSet{} }

// Add declares an objective.
func (s *SLOSet) Add(o *SLO) {
	if s == nil || o == nil {
		return
	}
	s.mu.Lock()
	s.slos = append(s.slos, o)
	s.mu.Unlock()
}

// Evaluate measures every objective now.
func (s *SLOSet) Evaluate() SLOReport {
	rep := SLOReport{Score: 1, Ready: true}
	if s == nil {
		return rep
	}
	s.mu.Lock()
	slos := append([]*SLO(nil), s.slos...)
	s.mu.Unlock()
	if len(slos) == 0 {
		return rep
	}
	met := 0
	for _, o := range slos {
		res := o.eval()
		if res.Met {
			met++
		} else if res.Critical {
			rep.Ready = false
		}
		rep.Objectives = append(rep.Objectives, res)
	}
	rep.Score = float64(met) / float64(len(slos))
	return rep
}

func (o *SLO) eval() SLOResult {
	res := SLOResult{Name: o.Name, Help: o.Help, Kind: o.Kind, Critical: o.Critical}
	switch o.Kind {
	case SLOQuantile:
		res.Samples = o.Hist.Count()
		res.Value = o.Hist.Quantile(o.Quantile).Seconds()
		res.Objective = o.Threshold.Seconds()
		res.Met = res.Value <= res.Objective
	case SLOCompliance:
		res.Samples = o.Hist.Count()
		res.Value = o.Hist.Compliance(o.Threshold)
		res.Objective = o.Target
		res.Met = res.Value >= res.Objective
	case SLORatio:
		res.Objective = o.Target
		if o.Ratio == nil {
			res.Met = true
			break
		}
		v, ok := o.Ratio()
		if !ok {
			// No data yet: vacuously met, value mirrors the target so
			// dashboards don't graph a scary zero.
			res.Value = o.Target
			res.Met = true
			break
		}
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		res.Value = v
		res.Samples = 1
		res.Met = v >= o.Target
	default:
		res.Met = true
	}
	return res
}
