// Package obs is the repository's telemetry subsystem: lock-free metric
// primitives (counters, gauges, fixed-bucket duration histograms), a named
// registry with Prometheus-text and human-readable export, a bounded
// ring-buffer packet-lifecycle event tracer, and an HTTP debug listener.
//
// The package is dependency-free (stdlib only) and built so that a
// component instrumented with it pays ~nothing when observation is off:
// every metric method is safe on a nil receiver (a single predictable
// branch, no allocation), so instrumented code holds plain possibly-nil
// pointers instead of checking an "enabled" flag at every site.
//
// Updates are single atomic operations; snapshots (export) are
// monotonic-read consistent but not a point-in-time cut across metrics —
// the usual contract for scrape-based telemetry.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are nil-safe no-ops (Load returns 0).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Load returns the current count.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready; all
// methods are nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket duration histogram: bucket i counts
// observations ≤ bounds[i], with an implicit +Inf bucket at the end.
// Observe is lock-free (one atomic add per counter touched) and
// allocation-free. All methods are nil-safe.
type Histogram struct {
	bounds []time.Duration // sorted upper bounds
	counts []atomic.Int64  // len(bounds)+1, last is +Inf
	sum    atomic.Int64    // nanoseconds
	n      atomic.Int64
}

// DefBuckets is a general-purpose exponential scale from 10µs to 10s,
// suitable for packet delays and serialization times.
var DefBuckets = []time.Duration{
	10 * time.Microsecond, 100 * time.Microsecond,
	time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 10 * time.Second,
}

// TickBuckets spans ±tick around zero: the natural scale for quantization
// rounding deltas, which live in [-tick/2, +tick/2].
func TickBuckets(tick time.Duration) []time.Duration {
	if tick <= 0 {
		tick = 10 * time.Millisecond
	}
	return []time.Duration{
		-tick / 2, -tick / 4, -tick / 10, 0,
		tick / 10, tick / 4, tick / 2, tick,
	}
}

func newHistogram(bounds []time.Duration) *Histogram {
	b := append([]time.Duration(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution by linear interpolation inside the bucket holding the
// target rank — the standard Prometheus histogram_quantile estimate, so
// accuracy is bucket-resolution-bounded. Returns 0 when empty; q is
// clamped to [0,1]. Observations in the +Inf bucket pin the estimate to
// the highest finite bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.Count() // nil-safe: 0
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	bounds, counts := h.snapshot()
	rank := q * float64(n)
	var cum float64
	for i, c := range counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: no finite upper bound to interpolate toward.
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		upper := bounds[i]
		lower := bucketLower(bounds, i)
		frac := (rank - (cum - float64(c))) / float64(c)
		return lower + time.Duration(frac*float64(upper-lower))
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// bucketLower picks the interpolation floor for bucket i: the previous
// bound, or for the first bucket min(0, bound) so negative-bound scales
// (TickBuckets) interpolate within their own range instead of up from 0.
func bucketLower(bounds []time.Duration, i int) time.Duration {
	if i > 0 {
		return bounds[i-1]
	}
	if bounds[0] < 0 {
		return bounds[0]
	}
	return 0
}

// Compliance estimates the fraction of observations ≤ threshold — the
// service-level indicator "share of events inside the deadline". The
// bucket straddling the threshold contributes proportionally (same
// interpolation assumption as Quantile). Returns 1 when empty: an SLO
// with no events has not been violated.
func (h *Histogram) Compliance(threshold time.Duration) float64 {
	n := h.Count()
	if n == 0 {
		return 1
	}
	bounds, counts := h.snapshot()
	var good float64
	for i, c := range counts {
		if i >= len(bounds) {
			break // +Inf bucket: all above any finite threshold
		}
		upper := bounds[i]
		if upper <= threshold {
			good += float64(c)
			continue
		}
		lower := bucketLower(bounds, i)
		if threshold > lower {
			good += float64(c) * float64(threshold-lower) / float64(upper-lower)
		}
		break
	}
	return good / float64(n)
}

// snapshot returns bounds plus non-cumulative per-bucket counts (the last
// entry is the +Inf bucket).
func (h *Histogram) snapshot() ([]time.Duration, []int64) {
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// VecMaxChildren bounds a CounterVec's label cardinality; further distinct
// label values collapse into the OverflowLabel child so a looping trace
// cannot grow a metric without bound.
const VecMaxChildren = 1024

// OverflowLabel is the label value used once a CounterVec is full.
const OverflowLabel = "overflow"

// DroppedLabelsName is the registry-wide counter of label values that hit
// a Vec's cardinality cap and were collapsed into OverflowLabel. A nonzero
// value is the "a farm is minting unbounded labels" alarm.
const DroppedLabelsName = "tracemod_obs_dropped_labels_total"

// CounterVec is a family of counters keyed by one label. With is nil-safe
// (returns a nil *Counter, whose methods are no-ops).
type CounterVec struct {
	label    string
	mu       sync.RWMutex
	children map[string]*Counter
	order    []string
	dropped  *Counter // registry-wide DroppedLabelsName counter (nil-safe)
}

// With returns the child counter for the given label value, creating it if
// needed (up to VecMaxChildren distinct values).
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[value]; ok {
		return c
	}
	if len(v.children) >= VecMaxChildren {
		v.dropped.Inc()
		value = OverflowLabel
		if c, ok := v.children[value]; ok {
			return c
		}
	}
	c = &Counter{}
	v.children[value] = c
	v.order = append(v.order, value)
	return c
}

// Remove deletes the child for the given label value (session churn:
// emud removes a session's children when the session is deleted, so the
// export does not accumulate dead labels). Removing an absent value is a
// no-op. A counter handle obtained earlier keeps working but is no longer
// exported.
func (v *CounterVec) Remove(value string) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.children[value]; !ok {
		return
	}
	delete(v.children, value)
	for i, val := range v.order {
		if val == value {
			v.order = append(v.order[:i], v.order[i+1:]...)
			break
		}
	}
}

// snapshot returns label values in creation order with their counts.
func (v *CounterVec) snapshot() ([]string, []int64) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	vals := append([]string(nil), v.order...)
	counts := make([]int64, len(vals))
	for i, val := range vals {
		counts[i] = v.children[val].Load()
	}
	return vals, counts
}

// GaugeVec is a family of gauges keyed by one label, the gauge analogue
// of CounterVec (emud uses it for per-session state). With is nil-safe.
type GaugeVec struct {
	label    string
	mu       sync.RWMutex
	children map[string]*Gauge
	order    []string
	dropped  *Counter // registry-wide DroppedLabelsName counter (nil-safe)
}

// With returns the child gauge for the given label value, creating it if
// needed (up to VecMaxChildren distinct values).
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	g, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.children[value]; ok {
		return g
	}
	if len(v.children) >= VecMaxChildren {
		v.dropped.Inc()
		value = OverflowLabel
		if g, ok := v.children[value]; ok {
			return g
		}
	}
	g = &Gauge{}
	v.children[value] = g
	v.order = append(v.order, value)
	return g
}

// Remove deletes the child for the given label value (no-op if absent).
func (v *GaugeVec) Remove(value string) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.children[value]; !ok {
		return
	}
	delete(v.children, value)
	for i, val := range v.order {
		if val == value {
			v.order = append(v.order[:i], v.order[i+1:]...)
			break
		}
	}
}

// snapshot returns label values in creation order with their values.
func (v *GaugeVec) snapshot() ([]string, []int64) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	vals := append([]string(nil), v.order...)
	values := make([]int64, len(vals))
	for i, val := range vals {
		values[i] = v.children[val].Load()
	}
	return vals, values
}

// metricKind discriminates registry entries for export.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterVec
	kindGaugeVec
	kindGaugeFunc
	kindCounterFunc
)

// metric is one registered entry.
type metric struct {
	name, help string
	kind       metricKind
	c          *Counter
	g          *Gauge
	h          *Histogram
	vec        *CounterVec
	gvec       *GaugeVec
	fn         func() float64
}

// Registry holds named metrics for export. Registration is idempotent:
// asking for an existing name of the same kind returns the existing
// instance (so two Distill calls sharing a registry accumulate), and a
// kind collision panics — it is a programming error, like a duplicate
// expvar. All methods are nil-safe: a nil registry hands out nil metrics,
// which in turn no-op, so "observability off" needs no branches at the
// instrumentation sites.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

func (r *Registry) lookup(name string, kind metricKind) (*metric, bool) {
	m, ok := r.byName[name]
	if !ok {
		return nil, false
	}
	if m.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
	}
	return m, true
}

func (r *Registry) add(m *metric) {
	r.metrics = append(r.metrics, m)
	r.byName[m.name] = m
}

// Counter registers (or returns the existing) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name, kindCounter); ok {
		return m.c
	}
	m := &metric{name: name, help: help, kind: kindCounter, c: &Counter{}}
	r.add(m)
	return m.c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name, kindGauge); ok {
		return m.g
	}
	m := &metric{name: name, help: help, kind: kindGauge, g: &Gauge{}}
	r.add(m)
	return m.g
}

// Histogram registers (or returns the existing) duration histogram with
// the given bucket upper bounds (DefBuckets if nil).
func (r *Registry) Histogram(name, help string, bounds []time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name, kindHistogram); ok {
		return m.h
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	m := &metric{name: name, help: help, kind: kindHistogram, h: newHistogram(bounds)}
	r.add(m)
	return m.h
}

// CounterVec registers (or returns the existing) counter family keyed by
// label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name, kindCounterVec); ok {
		return m.vec
	}
	m := &metric{name: name, help: help, kind: kindCounterVec,
		vec: &CounterVec{label: label, children: map[string]*Counter{},
			dropped: r.droppedLabelsLocked()}}
	r.add(m)
	return m.vec
}

// GaugeVec registers (or returns the existing) gauge family keyed by
// label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name, kindGaugeVec); ok {
		return m.gvec
	}
	m := &metric{name: name, help: help, kind: kindGaugeVec,
		gvec: &GaugeVec{label: label, children: map[string]*Gauge{},
			dropped: r.droppedLabelsLocked()}}
	r.add(m)
	return m.gvec
}

// droppedLabelsLocked registers (or returns) the registry-wide
// DroppedLabelsName counter. Caller holds r.mu.
func (r *Registry) droppedLabelsLocked() *Counter {
	if m, ok := r.lookup(DroppedLabelsName, kindCounter); ok {
		return m.c
	}
	m := &metric{name: DroppedLabelsName,
		help: "Label values collapsed into the overflow child by a Vec cardinality cap.",
		kind: kindCounter, c: &Counter{}}
	r.add(m)
	return m.c
}

// GaugeFunc registers a gauge computed at export time by fn (for values a
// component already tracks, like a queue's busy horizon).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.lookup(name, kindGaugeFunc); ok {
		return
	}
	r.add(&metric{name: name, help: help, kind: kindGaugeFunc, fn: fn})
}

// CounterFunc registers a counter read at export time by fn (for existing
// atomic counters that should not be double-tracked).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.lookup(name, kindCounterFunc); ok {
		return
	}
	r.add(&metric{name: name, help: help, kind: kindCounterFunc, fn: fn})
}

// each calls fn for every metric in registration order.
func (r *Registry) each(fn func(*metric)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	snap := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range snap {
		fn(m)
	}
}
