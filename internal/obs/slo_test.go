package obs

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestQuantileEmptyAndClamp(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_empty", "", nil)
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram q99 = %v", got)
	}
	h.Observe(time.Millisecond)
	if h.Quantile(-1) > h.Quantile(0) || h.Quantile(2) < h.Quantile(1) {
		t.Fatal("out-of-range quantiles not clamped")
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile not zero")
	}
}

// TestQuantileUniformAccuracy checks the estimator against a uniform
// distribution, where every true quantile is known exactly. The estimate
// interpolates within buckets, so it must land within one bucket width of
// truth.
func TestQuantileUniformAccuracy(t *testing.T) {
	// Millisecond-spaced buckets over [0, 100ms].
	var bounds []time.Duration
	for ms := 1; ms <= 100; ms++ {
		bounds = append(bounds, time.Duration(ms)*time.Millisecond)
	}
	reg := NewRegistry()
	h := reg.Histogram("q_uniform", "", bounds)
	rng := rand.New(rand.NewSource(1))
	const n = 100_000
	for i := 0; i < n; i++ {
		h.Observe(time.Duration(rng.Float64() * 100 * float64(time.Millisecond)))
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		truth := time.Duration(q * 100 * float64(time.Millisecond))
		got := h.Quantile(q)
		if diff := math.Abs(float64(got - truth)); diff > float64(2*time.Millisecond) {
			t.Errorf("uniform q%.2f = %v, truth %v (off by %v)", q, got, truth, time.Duration(diff))
		}
	}
}

// TestQuantileExponentialAccuracy repeats the check against an
// exponential distribution (mean 10ms) on the default exponential bucket
// scale — the shape real latency data takes. Bucket resolution is coarse,
// so accept an estimate within the truth's own bucket.
func TestQuantileExponentialAccuracy(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_exp", "", nil) // DefBuckets
	rng := rand.New(rand.NewSource(2))
	const n, mean = 200_000, 10 * time.Millisecond
	for i := 0; i < n; i++ {
		h.Observe(time.Duration(rng.ExpFloat64() * float64(mean)))
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		truth := time.Duration(-math.Log(1-q) * float64(mean))
		got := h.Quantile(q)
		// The estimate must land inside the bucket [lo, hi] containing the
		// truth (linear interpolation cannot do better on a log scale).
		lo, hi := time.Duration(0), DefBuckets[len(DefBuckets)-1]
		for i, b := range DefBuckets {
			if truth <= b {
				hi = b
				if i > 0 {
					lo = DefBuckets[i-1]
				}
				break
			}
		}
		if got < lo || got > hi {
			t.Errorf("exponential q%.2f = %v outside truth bucket [%v, %v] (truth %v)", q, got, lo, hi, truth)
		}
	}
}

// TestQuantileNegativeBounds exercises interpolation on a TickBuckets-style
// scale whose first bound is negative: the first bucket's floor is its own
// bound, not zero, so a symmetric distribution of rounding deltas yields a
// near-zero median and negative low quantiles.
func TestQuantileNegativeBounds(t *testing.T) {
	tick := 10 * time.Millisecond
	reg := NewRegistry()
	h := reg.Histogram("q_tick", "", TickBuckets(tick))
	rng := rand.New(rand.NewSource(3))
	const n = 100_000
	for i := 0; i < n; i++ {
		// Uniform rounding delta in [-tick/2, +tick/2).
		h.Observe(time.Duration((rng.Float64() - 0.5) * float64(tick)))
	}
	p10 := h.Quantile(0.1)
	if p10 >= 0 || p10 < -tick/2 {
		t.Fatalf("p10 = %v, want within [-%v, 0)", p10, tick/2)
	}
	p50 := h.Quantile(0.5)
	if d := math.Abs(float64(p50)); d > float64(tick)/8 {
		t.Fatalf("p50 = %v, want near zero for symmetric deltas", p50)
	}
	p90 := h.Quantile(0.9)
	if p90 <= 0 || p90 > tick/2 {
		t.Fatalf("p90 = %v, want within (0, %v]", p90, tick/2)
	}
}

func TestQuantileOverflowBucketPins(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_over", "", []time.Duration{time.Millisecond, 2 * time.Millisecond})
	for i := 0; i < 10; i++ {
		h.Observe(time.Second) // all in +Inf
	}
	if got := h.Quantile(0.99); got != 2*time.Millisecond {
		t.Fatalf("overflow q99 = %v, want the highest finite bound 2ms", got)
	}
}

func TestCompliance(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("c", "", []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond})
	if got := h.Compliance(time.Millisecond); got != 1 {
		t.Fatalf("empty compliance = %v, want vacuous 1", got)
	}
	// 80 fast (≤1ms), 20 slow (≤100ms, >10ms).
	for i := 0; i < 80; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 20; i++ {
		h.Observe(50 * time.Millisecond)
	}
	if got := h.Compliance(time.Millisecond); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("compliance(1ms) = %v, want 0.8", got)
	}
	if got := h.Compliance(10 * time.Millisecond); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("compliance(10ms) = %v, want 0.8 (slow bucket above threshold)", got)
	}
	if got := h.Compliance(100 * time.Millisecond); got != 1 {
		t.Fatalf("compliance(100ms) = %v, want 1", got)
	}
	// A threshold straddling the slow bucket is credited proportionally.
	mid := h.Compliance(55 * time.Millisecond)
	if mid <= 0.8 || mid >= 1 {
		t.Fatalf("straddling compliance = %v, want strictly between 0.8 and 1", mid)
	}
}

func TestSLOSetEvaluate(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("slo_lat", "", []time.Duration{time.Millisecond, 10 * time.Millisecond})
	for i := 0; i < 100; i++ {
		h.Observe(500 * time.Microsecond)
	}
	goodRatio := func() (float64, bool) { return 0.99, true }
	badRatio := func() (float64, bool) { return 0.5, true }
	noData := func() (float64, bool) { return 0, false }

	set := NewSLOSet()
	set.Add(&SLO{Name: "p99", Kind: SLOQuantile, Critical: true, Hist: h, Quantile: 0.99, Threshold: 10 * time.Millisecond})
	set.Add(&SLO{Name: "compliance", Kind: SLOCompliance, Hist: h, Threshold: time.Millisecond, Target: 0.99})
	set.Add(&SLO{Name: "good", Kind: SLORatio, Ratio: goodRatio, Target: 0.95})
	set.Add(&SLO{Name: "bad", Kind: SLORatio, Ratio: badRatio, Target: 0.95})
	set.Add(&SLO{Name: "vacuous", Kind: SLORatio, Ratio: noData, Target: 0.95})

	rep := set.Evaluate()
	if len(rep.Objectives) != 5 {
		t.Fatalf("%d objectives", len(rep.Objectives))
	}
	byName := map[string]SLOResult{}
	for _, r := range rep.Objectives {
		byName[r.Name] = r
	}
	for _, name := range []string{"p99", "compliance", "good", "vacuous"} {
		if !byName[name].Met {
			t.Errorf("%s not met: %+v", name, byName[name])
		}
	}
	if byName["bad"].Met {
		t.Errorf("bad met: %+v", byName["bad"])
	}
	if want := 4.0 / 5.0; math.Abs(rep.Score-want) > 1e-9 {
		t.Fatalf("score = %v, want %v", rep.Score, want)
	}
	if !rep.Ready {
		t.Fatal("not ready though every critical objective is met")
	}

	// A failing critical objective flips readiness.
	set.Add(&SLO{Name: "crit-bad", Kind: SLORatio, Critical: true, Ratio: badRatio, Target: 0.95})
	if rep := set.Evaluate(); rep.Ready {
		t.Fatal("ready despite failing critical objective")
	}
}

func TestSLOSetNilSafe(t *testing.T) {
	var set *SLOSet
	set.Add(&SLO{Name: "x"})
	rep := set.Evaluate()
	if !rep.Ready || rep.Score != 1 || len(rep.Objectives) != 0 {
		t.Fatalf("nil set report %+v", rep)
	}
}

// TestVecOverflowCountsDroppedLabels asserts the registry-wide dropped-
// labels counter ticks once per distinct label value that hits a Vec's
// cardinality cap — across both counter and gauge families — and shows up
// in the Prometheus scrape as the unbounded-label-growth alarm.
func TestVecOverflowCountsDroppedLabels(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("dropped_c", "", "id")
	for i := 0; i < VecMaxChildren+25; i++ {
		cv.With(strconv.Itoa(i)).Inc()
	}
	gv := reg.GaugeVec("dropped_g", "", "id")
	for i := 0; i < VecMaxChildren+17; i++ {
		gv.With(strconv.Itoa(i)).Set(1)
	}
	got := findCounterValue(t, reg, DroppedLabelsName)
	if got != 25+17 {
		t.Fatalf("%s = %v, want 42", DroppedLabelsName, got)
	}
	// Repeat lookups of an already-collapsed value still count: each miss
	// is one more label the operator is not seeing.
	cv.With("yet-another").Inc()
	if got := findCounterValue(t, reg, DroppedLabelsName); got != 43 {
		t.Fatalf("%s = %v after one more overflow, want 43", DroppedLabelsName, got)
	}
}

// findCounterValue scrapes the registry's Prometheus text for an unlabeled
// counter's value.
func findCounterValue(t *testing.T, reg *Registry, name string) float64 {
	t.Helper()
	out := reg.PrometheusString()
	for _, line := range strings.Split(out, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("unparsable scrape line %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("no %s in scrape:\n%s", name, out)
	return 0
}
