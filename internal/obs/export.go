// Snapshot export: Prometheus text exposition format (version 0.0.4, the
// format every scraper accepts) and a human-readable dump for terminals.
package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format. Durations are exported in seconds, per convention;
// histogram buckets are cumulative with a +Inf bucket, _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	r.each(func(m *metric) {
		typ := "counter"
		switch m.kind {
		case kindGauge, kindGaugeFunc, kindGaugeVec:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if m.help != "" {
			pf("# HELP %s %s\n", m.name, m.help)
		}
		pf("# TYPE %s %s\n", m.name, typ)
		switch m.kind {
		case kindCounter:
			pf("%s %d\n", m.name, m.c.Load())
		case kindGauge:
			pf("%s %d\n", m.name, m.g.Load())
		case kindGaugeFunc, kindCounterFunc:
			pf("%s %s\n", m.name, formatFloat(m.fn()))
		case kindCounterVec:
			vals, counts := m.vec.snapshot()
			for i, v := range vals {
				pf("%s{%s=%q} %d\n", m.name, m.vec.label, v, counts[i])
			}
		case kindGaugeVec:
			vals, values := m.gvec.snapshot()
			for i, v := range vals {
				pf("%s{%s=%q} %d\n", m.name, m.gvec.label, v, values[i])
			}
		case kindHistogram:
			bounds, counts := m.h.snapshot()
			cum := int64(0)
			for i, b := range bounds {
				cum += counts[i]
				pf("%s_bucket{le=%q} %d\n", m.name, formatFloat(b.Seconds()), cum)
			}
			cum += counts[len(counts)-1]
			pf("%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			pf("%s_sum %s\n", m.name, formatFloat(m.h.Sum().Seconds()))
			pf("%s_count %d\n", m.name, m.h.Count())
		}
	})
	return err
}

// formatFloat renders a float the way Prometheus expects (no exponent for
// ordinary magnitudes, trimmed trailing zeros).
func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	s := fmt.Sprintf("%g", f)
	return s
}

// Dump writes a human-readable snapshot: one aligned line per scalar
// metric, indented bucket tables for histograms and vectors.
func (r *Registry) Dump(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	r.each(func(m *metric) {
		switch m.kind {
		case kindCounter:
			pf("%-52s %12d\n", m.name, m.c.Load())
		case kindGauge:
			pf("%-52s %12d\n", m.name, m.g.Load())
		case kindGaugeFunc, kindCounterFunc:
			pf("%-52s %12s\n", m.name, formatFloat(m.fn()))
		case kindCounterVec:
			pf("%s (by %s)\n", m.name, m.vec.label)
			vals, counts := m.vec.snapshot()
			for i, v := range vals {
				pf("    %-48s %12d\n", v, counts[i])
			}
			if len(vals) == 0 {
				pf("    (empty)\n")
			}
		case kindGaugeVec:
			pf("%s (by %s)\n", m.name, m.gvec.label)
			vals, values := m.gvec.snapshot()
			for i, v := range vals {
				pf("    %-48s %12d\n", v, values[i])
			}
			if len(vals) == 0 {
				pf("    (empty)\n")
			}
		case kindHistogram:
			pf("%-40s count %8d  mean %s\n", m.name, m.h.Count(), m.h.Mean())
			bounds, counts := m.h.snapshot()
			for i, b := range bounds {
				if counts[i] > 0 {
					pf("    le %-12v %12d\n", b, counts[i])
				}
			}
			if counts[len(counts)-1] > 0 {
				pf("    le +Inf        %12d\n", counts[len(counts)-1])
			}
		}
	})
	return err
}

// PrometheusString renders WritePrometheus into a string (tests, logs).
func (r *Registry) PrometheusString() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}

// DumpString renders Dump into a string.
func (r *Registry) DumpString() string {
	var b strings.Builder
	_ = r.Dump(&b)
	return b.String()
}

// Uptime registers the standard process gauge every debug listener wants:
// seconds since start, computed at scrape time.
func Uptime(r *Registry, start time.Time) {
	r.GaugeFunc("tracemod_uptime_seconds", "Seconds since the process started.",
		func() float64 { return time.Since(start).Seconds() })
}
