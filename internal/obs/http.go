// The live-introspection surface: an HTTP debug listener serving the
// metric snapshot (/metrics, Prometheus text; /metrics?format=text, human
// dump), a liveness probe (/healthz), the buffered lifecycle events
// (/debug/events), and the stdlib profiler (/debug/pprof/...).
package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Mux builds the debug mux for a registry and an optional event tracer
// (nil tr disables /debug/events).
func Mux(reg *Registry, tr *RingTracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = reg.Dump(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if tr == nil {
			fmt.Fprintln(w, "event tracing disabled")
			return
		}
		fmt.Fprintf(w, "%d buffered events (%d recorded, %d overwritten)\n\n",
			tr.Len(), tr.Total(), tr.Overwritten())
		_ = tr.Dump(w)
	})
	// The stdlib profiler, mounted explicitly so nothing leaks onto
	// http.DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug listener.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer binds addr (use a ":0" port to pick a free one) and
// serves the debug mux in a background goroutine. tr may be nil.
func StartDebugServer(addr string, reg *Registry, tr *RingTracer) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	srv := &http.Server{Handler: Mux(reg, tr), ReadHeaderTimeout: 5 * time.Second}
	s := &DebugServer{ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (host:port).
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *DebugServer) Close() error { return s.srv.Close() }
