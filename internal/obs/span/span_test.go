package span

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fixedClock returns a deterministic monotonic clock for tests.
func fixedClock() func() time.Duration {
	var n atomic.Int64
	return func() time.Duration { return time.Duration(n.Add(1)) * time.Microsecond }
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if sp := tr.Root("x"); sp != nil {
		t.Fatalf("nil tracer rooted a span: %v", sp)
	}
	// Every span method must be nil-safe.
	var sp *Span
	sp.Attr("k", 1)
	sp.AttrStr("k", "v")
	sp.Event("e", 0)
	sp.EventAt("e", 0, 0)
	sp.End()
	sp.EndAt(0)
	if c := sp.Child("child"); c != nil {
		t.Fatalf("nil span produced a child: %v", c)
	}
	if sp.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
}

func TestZeroSampleNeverRoots(t *testing.T) {
	tr := New(Config{Sample: 0, Now: fixedClock(), Seed: 1})
	if tr.Enabled() {
		t.Fatal("Sample 0 tracer reports enabled")
	}
	for i := 0; i < 100; i++ {
		if tr.Root("x") != nil {
			t.Fatal("Sample 0 rooted a span")
		}
	}
}

func TestSuspendPausesRootSampling(t *testing.T) {
	sink := NewCollectorSink(0)
	tr := New(Config{Sample: 1, Sink: sink, Now: fixedClock(), Seed: 1})
	if tr.Suspended() {
		t.Fatal("fresh tracer reports suspended")
	}
	tr.Suspend(true)
	if !tr.Suspended() {
		t.Fatal("Suspend(true) not visible")
	}
	if !tr.Enabled() {
		t.Fatal("suspension must not report the tracer as disabled")
	}
	if sp := tr.Root("x"); sp != nil {
		t.Fatalf("suspended tracer rooted a span: %v", sp)
	}
	sampled := SpanContext{Trace: TraceID{Lo: 1}, Span: SpanID(2), Sampled: true}
	if sp := tr.StartRemote(sampled, "x"); sp != nil {
		t.Fatalf("suspended tracer continued a remote trace: %v", sp)
	}
	tr.Suspend(false)
	sp := tr.Root("x")
	if sp == nil {
		t.Fatal("resume did not restore sampling")
	}
	sp.End()
	if got := len(sink.Spans()); got != 1 {
		t.Fatalf("collected %d spans, want 1", got)
	}

	// Nil-safety.
	var nilTr *Tracer
	nilTr.Suspend(true)
	if nilTr.Suspended() {
		t.Fatal("nil tracer reports suspended")
	}
}

func TestFullSamplingRootsEverySpan(t *testing.T) {
	sink := NewCollectorSink(0)
	tr := New(Config{Sample: 1, Sink: sink, Now: fixedClock(), Seed: 1})
	for i := 0; i < 10; i++ {
		sp := tr.Root("root")
		if sp == nil {
			t.Fatal("Sample 1 skipped a root")
		}
		sp.End()
	}
	if got := len(sink.Spans()); got != 10 {
		t.Fatalf("collected %d spans, want 10", got)
	}
}

func TestPartialSamplingRate(t *testing.T) {
	tr := New(Config{Sample: 0.25, Now: fixedClock(), Seed: 1})
	sampled := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if sp := tr.Root("x"); sp != nil {
			sampled++
			sp.End()
		}
	}
	// 1-in-4 deterministic sampling: exactly n/4.
	if sampled != n/4 {
		t.Fatalf("sampled %d of %d at rate 0.25", sampled, n)
	}
}

func TestChildParenting(t *testing.T) {
	sink := NewCollectorSink(0)
	tr := New(Config{Sample: 1, Sink: sink, Now: fixedClock(), Seed: 1})
	root := tr.Root("root")
	child := root.Child("child")
	grand := child.Child("grand")
	grand.End()
	child.End()
	root.End()

	spans := sink.Spans()
	if len(spans) != 3 {
		t.Fatalf("collected %d spans, want 3", len(spans))
	}
	byName := map[string]*SpanData{}
	for _, d := range spans {
		byName[d.Name] = d
	}
	if byName["child"].Trace != byName["root"].Trace || byName["grand"].Trace != byName["root"].Trace {
		t.Fatal("children escaped the root's trace")
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Fatalf("child parent = %v, want root %v", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grand"].Parent != byName["child"].ID {
		t.Fatalf("grand parent = %v, want child %v", byName["grand"].Parent, byName["child"].ID)
	}
	if byName["root"].Parent != 0 {
		t.Fatalf("root has parent %v", byName["root"].Parent)
	}
}

func TestSpanBudgetExhaustion(t *testing.T) {
	sink := NewCollectorSink(0)
	tr := New(Config{Sample: 1, MaxSpansPerTrace: 3, Sink: sink, Now: fixedClock(), Seed: 1})
	root := tr.Root("root")
	kept := 0
	for i := 0; i < 10; i++ {
		if c := root.Child("c"); c != nil {
			kept++
			c.End()
		}
	}
	root.End()
	// Budget 3 covers the root plus two children.
	if kept != 2 {
		t.Fatalf("budget 3 admitted %d children, want 2", kept)
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	sink := NewCollectorSink(0)
	tr := New(Config{Sample: 1, Sink: sink, Now: fixedClock(), Seed: 1})
	sp := tr.Root("x")
	sp.End()
	sp.End()
	sp.EndAt(42)
	if got := len(sink.Spans()); got != 1 {
		t.Fatalf("double End recorded %d spans", got)
	}
}

func TestAttrAndEventCaps(t *testing.T) {
	sink := NewCollectorSink(0)
	tr := New(Config{Sample: 1, Sink: sink, Now: fixedClock(), Seed: 1})
	sp := tr.Root("x")
	for i := 0; i < MaxAttrsPerSpan+10; i++ {
		sp.Attr("k", int64(i))
	}
	for i := 0; i < MaxEventsPerSpan+10; i++ {
		sp.Event("e", int64(i))
	}
	sp.End()
	d := sink.Spans()[0]
	if len(d.Attrs) != MaxAttrsPerSpan {
		t.Fatalf("%d attrs, cap %d", len(d.Attrs), MaxAttrsPerSpan)
	}
	if len(d.Events) != MaxEventsPerSpan {
		t.Fatalf("%d events, cap %d", len(d.Events), MaxEventsPerSpan)
	}
	if d.Truncated != 20 {
		t.Fatalf("truncated = %d, want 20", d.Truncated)
	}
}

// TestConcurrentSpanUse hammers one tracer from many goroutines — roots,
// children, attrs, events, concurrent double-Ends — under -race.
func TestConcurrentSpanUse(t *testing.T) {
	sink := NewCollectorSink(1 << 18)
	tr := New(Config{Sample: 1, Sink: sink, Now: fixedClock(), Seed: 7})
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				root := tr.Root("root")
				var inner sync.WaitGroup
				for c := 0; c < 3; c++ {
					inner.Add(1)
					go func(c int) {
						defer inner.Done()
						child := root.Child("child")
						child.Attr("c", int64(c))
						child.Event("tick", int64(c))
						child.End()
						child.End() // concurrent double-End must be safe
					}(c)
				}
				root.AttrStr("w", "worker")
				inner.Wait()
				root.End()
			}
		}(w)
	}
	wg.Wait()
	spans := sink.Spans()
	roots := 0
	for _, d := range spans {
		if d.Parent == 0 {
			roots++
		}
	}
	if want := workers * perWorker; roots != want {
		t.Fatalf("%d roots recorded, want %d", roots, want)
	}
	// Every span ended exactly once: children = roots * 3.
	if want := workers * perWorker * 4; len(spans) != want {
		t.Fatalf("%d spans recorded, want %d", len(spans), want)
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record(&SpanData{Name: "s", Start: time.Duration(i)})
	}
	if f.Total() != 10 {
		t.Fatalf("total = %d", f.Total())
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot kept %d spans, want 4", len(snap))
	}
	// Oldest-first: the last four records are 6, 7, 8, 9.
	for i, d := range snap {
		if want := time.Duration(6 + i); d.Start != want {
			t.Fatalf("snap[%d].Start = %v, want %v", i, d.Start, want)
		}
	}
}

// TestFlightRecorderConcurrentWraparound races writers past the ring
// boundary while a reader snapshots, under -race. The lock-free ring must
// never yield a torn pointer — every snapshot entry is a whole SpanData.
func TestFlightRecorderConcurrentWraparound(t *testing.T) {
	f := NewFlightRecorder(8)
	const writers, perWriter = 4, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f.Record(&SpanData{Name: "w", Start: time.Duration(w*1_000_000 + i)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for snapping := true; snapping; {
		select {
		case <-done:
			snapping = false
		default:
		}
		for _, d := range f.Snapshot() {
			if d.Name != "w" {
				t.Fatalf("torn record: %+v", d)
			}
		}
	}
	if got := f.Total(); got != writers*perWriter {
		t.Fatalf("recorded %d spans, want %d", got, writers*perWriter)
	}
	if len(f.Snapshot()) != 8 {
		t.Fatalf("final snapshot has %d spans, want the full ring of 8", len(f.Snapshot()))
	}
}

func TestNilFlightRecorderSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(&SpanData{})
	if f.Total() != 0 || f.Capacity() != 0 || f.Snapshot() != nil {
		t.Fatal("nil flight recorder not inert")
	}
}

func TestRootIntoRecordsToBothSinks(t *testing.T) {
	global := NewCollectorSink(0)
	tr := New(Config{Sample: 1, Sink: global, Now: fixedClock(), Seed: 1})
	extra := NewFlightRecorder(4)
	sp := tr.RootInto(extra, "x")
	child := sp.Child("c")
	child.End()
	sp.End()
	if got := len(global.Spans()); got != 2 {
		t.Fatalf("global sink got %d spans, want 2", got)
	}
	if got := extra.Total(); got != 2 {
		t.Fatalf("flight sink got %d spans, want 2 (children must follow the root's sink)", got)
	}
}

func TestTracerMetricsCounters(t *testing.T) {
	// The counters live on the obs registry; exercised indirectly through
	// the registry import in New — here we just assert sampled vs skipped
	// accounting by behavior (metrics plumbing is covered in obs tests).
	tr := New(Config{Sample: 0.5, Now: fixedClock(), Seed: 3})
	sampled := 0
	for i := 0; i < 10; i++ {
		if sp := tr.Root("x"); sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 5 {
		t.Fatalf("sampled %d of 10 at 0.5", sampled)
	}
}

func TestSetNowRebindsClock(t *testing.T) {
	sink := NewCollectorSink(0)
	tr := New(Config{Sample: 1, Sink: sink, Seed: 1})
	tr.SetNow(func() time.Duration { return 123 * time.Millisecond })
	sp := tr.Root("x")
	sp.End()
	if d := sink.Spans()[0]; d.Start != 123*time.Millisecond || d.End != 123*time.Millisecond {
		t.Fatalf("span times %v..%v, want the rebound clock's 123ms", d.Start, d.End)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New(Config{Sample: 1, Now: fixedClock(), Seed: 1})
	sp := tr.Root("x")
	ctx := NewContext(context.Background(), sp)
	if got := FromContext(ctx); got != sp {
		t.Fatalf("FromContext = %p, want %p", got, sp)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context yielded %p", got)
	}
	if NewContext(context.Background(), nil) != context.Background() {
		t.Fatal("nil span should leave the context untouched")
	}
	sp.End()
}

func TestIDStringsAreLowercaseHex(t *testing.T) {
	tr := New(Config{Sample: 1, Now: fixedClock(), Seed: 9})
	sp := tr.Root("x")
	tid := sp.TraceID().String()
	sid := sp.Context().Span.String()
	if len(tid) != 32 || strings.ToLower(tid) != tid {
		t.Fatalf("trace id %q", tid)
	}
	if len(sid) != 16 || strings.ToLower(sid) != sid {
		t.Fatalf("span id %q", sid)
	}
	sp.End()
}
