// The per-session flight recorder: a fixed-capacity, lock-free ring of
// the most recent finished spans. One recorder rides on every emud
// session (attached as the trace sink of each sampled packet root), so
// when a session is quarantined — or an operator asks via
// GET /v1/sessions/{id}/flight — the last moments before the incident are
// still on board, like an aircraft's FDR.
//
// The ring is lock-free on the write path: writers claim a slot with one
// atomic add and publish the span with one atomic pointer store. A reader
// racing a writer may observe a slot mid-replacement and see either the
// old or the new span — never a torn record, since slots hold pointers to
// immutable SpanData.
package span

import "sync/atomic"

// DefaultFlightCapacity bounds a flight recorder by default.
const DefaultFlightCapacity = 256

// FlightRecorder retains the last-N finished spans. A nil recorder is
// valid and drops everything. It implements Sink.
type FlightRecorder struct {
	slots []atomic.Pointer[SpanData]
	next  atomic.Uint64 // slots ever claimed; next%len is the write cursor
}

// NewFlightRecorder builds a recorder holding at most capacity spans
// (DefaultFlightCapacity if capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[SpanData], capacity)}
}

// Record implements Sink: claim the next slot, publish the span.
func (f *FlightRecorder) Record(d *SpanData) {
	if f == nil || d == nil {
		return
	}
	i := f.next.Add(1) - 1
	f.slots[i%uint64(len(f.slots))].Store(d)
}

// Total returns how many spans were ever recorded (including those since
// overwritten).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	return f.next.Load()
}

// Capacity returns the ring size (0 for a nil recorder).
func (f *FlightRecorder) Capacity() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Snapshot returns the retained spans, approximately oldest-first. Under
// concurrent writes the snapshot is a best-effort cut: each slot yields
// whichever span was published when it was read.
func (f *FlightRecorder) Snapshot() []*SpanData {
	if f == nil {
		return nil
	}
	n := f.next.Load()
	cap64 := uint64(len(f.slots))
	count := n
	if count > cap64 {
		count = cap64
	}
	out := make([]*SpanData, 0, count)
	// Oldest retained slot is n-count; walk forward to n-1.
	for i := n - count; i < n; i++ {
		if d := f.slots[i%cap64].Load(); d != nil {
			out = append(out, d)
		}
	}
	return out
}
