package span

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleSpans() []*SpanData {
	trace := TraceID{Hi: 0xaa, Lo: 0xbb}
	return []*SpanData{
		{
			Trace: trace, ID: 1, Name: "session.packet",
			Start: 10 * time.Millisecond, End: 30 * time.Millisecond,
			Attrs: []Attr{
				{Key: "session", Str: "s-1", IsStr: true},
				{Key: "size", Val: 1500},
			},
			Events: []Event{{Name: "pump-send", At: 29 * time.Millisecond, Val: 1472}},
		},
		{
			Trace: trace, ID: 2, Parent: 1, Name: "modulation",
			Start: 11 * time.Millisecond, End: 28 * time.Millisecond,
			Events: []Event{{Name: "cursor-fastpath", At: 11 * time.Millisecond}},
		},
		{
			Trace: trace, ID: 3, Parent: 2, Name: "wheel.wait",
			Start: 12 * time.Millisecond, End: 28 * time.Millisecond,
			Truncated: 4,
		},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := sampleSpans()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(in) {
		t.Fatalf("%d lines for %d spans", got, len(in))
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.Trace != b.Trace || a.ID != b.ID || a.Parent != b.Parent || a.Name != b.Name ||
			a.Start != b.Start || a.End != b.End || a.Truncated != b.Truncated {
			t.Fatalf("span %d: %+v != %+v", i, a, b)
		}
		if len(a.Attrs) != len(b.Attrs) || len(a.Events) != len(b.Events) {
			t.Fatalf("span %d payload lengths differ", i)
		}
		for j := range a.Attrs {
			if a.Attrs[j].Key != b.Attrs[j].Key || a.Attrs[j].Str != b.Attrs[j].Str ||
				a.Attrs[j].Val != b.Attrs[j].Val || a.Attrs[j].IsStr != b.Attrs[j].IsStr {
				t.Fatalf("span %d attr %d: %+v != %+v", i, j, a.Attrs[j], b.Attrs[j])
			}
		}
	}
}

func TestReadJSONLSkipsBlanksAndRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteJSONL(&buf, sampleSpans()[:1])
	buf.WriteString("\n\n")
	_ = WriteJSONL(&buf, sampleSpans()[1:2])
	out, err := ReadJSONL(&buf)
	if err != nil || len(out) != 2 {
		t.Fatalf("blank-line dump: %d spans, err %v", len(out), err)
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
}

func TestRenderTree(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTree(&buf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"trace 00000000000000aa00000000000000bb  (3 spans)",
		"session.packet",
		"modulation",
		"wheel.wait",
		"{session=s-1 size=1500}",
		"pump-send",
		"truncated",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering lacks %q:\n%s", want, out)
		}
	}
	// Indentation reflects parentage: wheel.wait sits two levels under the
	// root's children.
	lines := strings.Split(out, "\n")
	depth := func(name string) int {
		for _, l := range lines {
			if strings.Contains(l, name) {
				return len(l) - len(strings.TrimLeft(l, " "))
			}
		}
		t.Fatalf("no line for %q:\n%s", name, out)
		return -1
	}
	if !(depth("session.packet") < depth("modulation") && depth("modulation") < depth("wheel.wait")) {
		t.Fatalf("tree depths wrong:\n%s", out)
	}
}

func TestRenderTreeOrphan(t *testing.T) {
	spans := []*SpanData{{
		Trace: TraceID{Hi: 1, Lo: 1}, ID: 5, Parent: 99, Name: "lost.child",
		Start: time.Millisecond, End: 2 * time.Millisecond,
	}}
	var buf bytes.Buffer
	if err := RenderTree(&buf, spans); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lost.child") || !strings.Contains(buf.String(), "not in dump") {
		t.Fatalf("orphan not surfaced:\n%s", buf.String())
	}
}

func TestCollectorSinkCap(t *testing.T) {
	sink := NewCollectorSink(2)
	for i := 0; i < 5; i++ {
		sink.Record(&SpanData{ID: SpanID(i + 1)})
	}
	if got := len(sink.Spans()); got != 2 {
		t.Fatalf("kept %d spans, cap 2", got)
	}
	if got := sink.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
}
