// context.Context carriage for spans, so the control plane can hand the
// request span down through handlers without widening every signature.
package span

import "context"

type ctxKey struct{}

// NewContext returns ctx carrying s. A nil span is carried as-is (and
// FromContext returns nil), so callers never branch.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
