// Package span is the causal half of the telemetry subsystem: a sampled,
// zero-alloc-when-disabled span tracer that follows one packet (or one
// control-plane request) through every layer it crosses — HTTP handler,
// session manager, modulation engine, timer wheel, livewire pump — and
// records the journey as a tree of timed spans.
//
// The package follows the same contract as its sibling metric types in
// internal/obs: a nil *Tracer (observability off) costs one predictable
// branch per site and allocates nothing; an enabled tracer pays one atomic
// add per *unsampled* root and only allocates on the sampled path. Spans
// are values handed around as possibly-nil pointers, and every method is
// nil-safe, so instrumented code reads as straight-line logic with no
// "enabled" flags.
//
// Identifiers follow the W3C Trace Context model (16-byte trace ID, 8-byte
// span ID) so a trace started by an external caller's `traceparent` header
// stitches seamlessly into the spans recorded here (traceparent.go).
// Per-trace span counts are bounded: every root carries a budget, and once
// a trace exhausts it further children are dropped (and counted) rather
// than letting a looping packet grow a trace without bound.
package span

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tracemod/internal/obs"
)

// TraceID identifies one causal journey (16 bytes, W3C trace-id).
type TraceID struct{ Hi, Lo uint64 }

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t.Hi == 0 && t.Lo == 0 }

// String renders the 32-hex-digit W3C form.
func (t TraceID) String() string { return fmt.Sprintf("%016x%016x", t.Hi, t.Lo) }

// SpanID identifies one span within a trace (8 bytes, W3C parent-id).
type SpanID uint64

// String renders the 16-hex-digit W3C form.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// SpanContext is the propagation state of a sampled trace: what a span
// hands to its children, and what `traceparent` carries across process
// boundaries (minus the in-process-only budget and sink fields).
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool

	// budget is the remaining span allowance for this trace (shared by
	// every span of the trace; nil for contexts parsed off the wire until
	// a local span adopts them).
	budget *atomic.Int64
	// sink receives this trace's finished spans in addition to the
	// tracer's default sink (the per-session flight recorder rides here).
	sink Sink
}

// Valid reports whether the context names a real trace.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && sc.Span != 0 }

// Sink receives finished spans. Implementations must tolerate concurrent
// Record calls and must treat the SpanData as immutable.
type Sink interface {
	Record(*SpanData)
}

// Attr is one typed span attribute.
type Attr struct {
	Key string `json:"k"`
	// Exactly one of Str / Val is meaningful, per IsStr.
	Str   string `json:"s,omitempty"`
	Val   int64  `json:"v,omitempty"`
	IsStr bool   `json:"-"`
}

// Event is one timestamped point annotation inside a span.
type Event struct {
	Name string        `json:"name"`
	At   time.Duration `json:"at_ns"`
	// Val is an optional event payload (a delay, a delta, a count).
	Val int64 `json:"v,omitempty"`
}

// SpanData is one finished span: the immutable record a Sink receives and
// the unit of the JSONL dump format (encode.go).
type SpanData struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID // zero for roots
	Name   string
	Start  time.Duration
	End    time.Duration
	Attrs  []Attr
	Events []Event
	// Truncated counts attributes/events dropped by the per-span bounds.
	Truncated int32
}

// Bounds on per-span payload so a pathological caller cannot balloon one
// span, and on per-trace span count via the root budget.
const (
	MaxAttrsPerSpan  = 16
	MaxEventsPerSpan = 32
	// DefaultMaxSpansPerTrace bounds one trace's span tree.
	DefaultMaxSpansPerTrace = 128
)

// Config parameterizes a Tracer.
type Config struct {
	// Sample is the fraction of roots sampled, in [0, 1]. Zero disables
	// sampling entirely (Root always returns nil); 1 samples everything.
	// Intermediate rates sample deterministically 1-in-round(1/rate).
	Sample float64
	// MaxSpansPerTrace bounds one trace's span count
	// (DefaultMaxSpansPerTrace if 0).
	MaxSpansPerTrace int
	// Sink receives every finished span (optional; per-trace sinks attach
	// via RootInto regardless).
	Sink Sink
	// Now supplies span timestamps; defaults to time since New. A caller
	// whose spans wrap another clock's instants (the emud timer wheel, the
	// simulator) should pass that clock so span times and event times
	// share an epoch.
	Now func() time.Duration
	// Metrics, if non-nil, registers the tracer's own counters
	// (tracemod_span_*) so sampling and budget drops are observable.
	Metrics *obs.Registry
	// Seed perturbs span-ID generation; 0 derives one from the clock.
	Seed uint64
}

// Tracer creates sampled spans. A nil Tracer is valid and permanently
// disabled: every method no-ops and returns nil spans.
type Tracer struct {
	every  uint64 // sample 1 in every roots; 0 = never
	maxPer int64
	sink   Sink
	now    func() time.Duration
	seq    atomic.Uint64 // root-sampling counter
	ids    atomic.Uint64 // id-generation state
	seed   uint64

	// suspended pauses root sampling without reconfiguring the tracer —
	// the brownout controller's cheapest shed. In-flight spans finish
	// normally; only new roots are refused.
	suspended atomic.Bool

	started, sampled, finished, droppedBudget *obs.Counter // nil-safe
}

// New builds a tracer. A Sample of 0 yields a tracer that never samples —
// still usable (and cheaper to wire than special-casing nil), though nil
// works identically.
func New(cfg Config) *Tracer {
	t := &Tracer{sink: cfg.Sink, now: cfg.Now, seed: cfg.Seed}
	switch {
	case cfg.Sample >= 1:
		t.every = 1
	case cfg.Sample > 0:
		t.every = uint64(1/cfg.Sample + 0.5)
	}
	t.maxPer = int64(cfg.MaxSpansPerTrace)
	if t.maxPer <= 0 {
		t.maxPer = DefaultMaxSpansPerTrace
	}
	if t.now == nil {
		epoch := time.Now()
		t.now = func() time.Duration { return time.Since(epoch) }
	}
	if t.seed == 0 {
		t.seed = uint64(time.Now().UnixNano()) | 1
	}
	if cfg.Metrics != nil {
		t.started = cfg.Metrics.Counter("tracemod_span_roots_considered_total",
			"Root-span opportunities seen by the sampler.")
		t.sampled = cfg.Metrics.Counter("tracemod_span_roots_sampled_total",
			"Root spans actually started.")
		t.finished = cfg.Metrics.Counter("tracemod_span_finished_total",
			"Spans ended and recorded to a sink.")
		t.droppedBudget = cfg.Metrics.Counter("tracemod_span_dropped_budget_total",
			"Child spans refused because their trace exhausted its span budget.")
	}
	return t
}

// SetNow rebinds the tracer's clock. Call before any span is started (the
// emud manager does this once, to share the timer wheel's epoch).
func (t *Tracer) SetNow(now func() time.Duration) {
	if t != nil && now != nil {
		t.now = now
	}
}

// Now reads the tracer's clock (0 on a nil tracer).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.now()
}

// Enabled reports whether the tracer can ever sample. A suspended tracer
// is still enabled — the structural wiring (flight recorders, header
// propagation) stays in place; only new roots are refused.
func (t *Tracer) Enabled() bool { return t != nil && t.every > 0 }

// Suspend pauses (true) or resumes (false) root sampling at runtime.
// Safe to call concurrently with sampling and on a nil tracer. Used by
// the daemon's brownout controller: sampling is the first thing shed
// under memory pressure and the first restored on recovery.
func (t *Tracer) Suspend(on bool) {
	if t != nil {
		t.suspended.Store(on)
	}
}

// Suspended reports whether root sampling is currently paused.
func (t *Tracer) Suspended() bool { return t != nil && t.suspended.Load() }

// nextID derives a fresh non-zero id from the atomic counter via a
// splitmix64 finalizer: unique per tracer, no locks, no allocation.
func (t *Tracer) nextID() uint64 {
	x := t.ids.Add(1) + t.seed
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// Root starts a new sampled trace, or returns nil when this root falls
// outside the sample. The returned span must be ended exactly once.
func (t *Tracer) Root(name string) *Span { return t.RootInto(nil, name) }

// RootInto is Root with an additional per-trace sink: every span of the
// new trace (the root and all descendants) is recorded into extra as well
// as the tracer's default sink. The emud session farm passes the session's
// flight recorder here.
func (t *Tracer) RootInto(extra Sink, name string) *Span {
	if t == nil || t.every == 0 || t.suspended.Load() {
		return nil
	}
	t.started.Inc()
	if t.every > 1 && t.seq.Add(1)%t.every != 0 {
		return nil
	}
	return t.newRoot(TraceID{Hi: t.nextID(), Lo: t.nextID()}, 0, extra, name)
}

// StartRemote continues a trace ingested from the wire (a parsed
// `traceparent`): a sampled remote parent forces sampling of this request
// regardless of the local rate, so external callers can always get a full
// tree; an unsampled or invalid parent falls back to local root sampling.
func (t *Tracer) StartRemote(parent SpanContext, name string) *Span {
	if t == nil || t.every == 0 || t.suspended.Load() {
		return nil
	}
	if !parent.Valid() || !parent.Sampled {
		return t.Root(name)
	}
	t.started.Inc()
	return t.newRoot(parent.Trace, parent.Span, parent.sink, name)
}

func (t *Tracer) newRoot(trace TraceID, parent SpanID, extra Sink, name string) *Span {
	t.sampled.Inc()
	budget := &atomic.Int64{}
	budget.Store(t.maxPer - 1)
	s := &Span{t: t}
	s.d.Trace = trace
	s.d.ID = SpanID(t.nextID())
	s.d.Parent = parent
	s.d.Name = name
	s.d.Start = t.now()
	s.sc = SpanContext{Trace: trace, Span: s.d.ID, Sampled: true, budget: budget, sink: extra}
	return s
}

// Span is one in-progress span. A nil *Span is the disabled state: every
// method no-ops, so call sites never branch. Attribute and event methods
// are safe to call concurrently (a delivery timer annotating while the
// submitter still holds the span).
type Span struct {
	t     *Tracer
	mu    sync.Mutex
	d     SpanData
	sc    SpanContext
	ended atomic.Bool
}

// Context returns the span's propagation context (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the span's trace (zero for nil spans).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.d.Trace
}

// Child starts a sub-span. It returns nil — and counts the drop — once the
// trace's span budget is exhausted.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.t
	if s.sc.budget != nil && s.sc.budget.Add(-1) < 0 {
		t.droppedBudget.Inc()
		return nil
	}
	c := &Span{t: t}
	c.d.Trace = s.d.Trace
	c.d.ID = SpanID(t.nextID())
	c.d.Parent = s.d.ID
	c.d.Name = name
	c.d.Start = t.now()
	c.sc = SpanContext{Trace: s.d.Trace, Span: c.d.ID, Sampled: true, budget: s.sc.budget, sink: s.sc.sink}
	return c
}

// ChildAt is Child with an explicit start instant (a span that logically
// began at a scheduled time rather than now).
func (s *Span) ChildAt(name string, at time.Duration) *Span {
	c := s.Child(name)
	if c != nil {
		c.d.Start = at
	}
	return c
}

// Attr records an integer attribute (bounded; extras are counted, not
// stored).
func (s *Span) Attr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.d.Attrs) < MaxAttrsPerSpan {
		s.d.Attrs = append(s.d.Attrs, Attr{Key: key, Val: v})
	} else {
		s.d.Truncated++
	}
	s.mu.Unlock()
}

// AttrStr records a string attribute.
func (s *Span) AttrStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.d.Attrs) < MaxAttrsPerSpan {
		s.d.Attrs = append(s.d.Attrs, Attr{Key: key, Str: v, IsStr: true})
	} else {
		s.d.Truncated++
	}
	s.mu.Unlock()
}

// Event records a point annotation at the tracer's current time.
func (s *Span) Event(name string, v int64) {
	if s == nil {
		return
	}
	s.EventAt(name, s.t.now(), v)
}

// EventAt records a point annotation at an explicit instant (the engine
// stamps events with its own clock so simulator spans carry virtual time).
func (s *Span) EventAt(name string, at time.Duration, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.d.Events) < MaxEventsPerSpan {
		s.d.Events = append(s.d.Events, Event{Name: name, At: at, Val: v})
	} else {
		s.d.Truncated++
	}
	s.mu.Unlock()
}

// End finishes the span at the tracer's current time and records it to
// the sinks. Ending twice is a no-op, so wrapped callbacks can end
// defensively.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.t.now())
}

// EndAt is End with an explicit end instant.
func (s *Span) EndAt(at time.Duration) {
	if s == nil || s.ended.Swap(true) {
		return
	}
	s.mu.Lock()
	s.d.End = at
	s.mu.Unlock()
	s.t.finished.Inc()
	if s.sc.sink != nil {
		s.sc.sink.Record(&s.d)
	}
	if s.t.sink != nil && s.t.sink != s.sc.sink {
		s.t.sink.Record(&s.d)
	}
}
