// The span dump format. One finished span encodes as one JSON object on
// one line ("span JSONL"); a dump is any stream of such lines. The same
// format is produced by cmd/expt -trace-out, by the flight-recorder
// endpoint, and consumed by tracedump -render spans.
//
// Wire shape (field order fixed by the struct below):
//
//	{"trace":"<32 hex>","span":"<16 hex>","parent":"<16 hex|omitted>",
//	 "name":"...","start_ns":123,"end_ns":456,
//	 "attrs":[{"k":"dir","v":1},{"k":"sid","s":"s-1"}],
//	 "events":[{"name":"quantize","at_ns":130,"v":-40}],
//	 "truncated":0}
//
// Times are integer nanoseconds on the tracer's clock (wall-less: the
// emud wheel epoch, or virtual time for simulator runs). RenderTree
// reconstructs parent/child structure from the records alone, so a dump
// is self-contained.
package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// wireSpan is the JSONL schema for one SpanData.
type wireSpan struct {
	Trace     string     `json:"trace"`
	Span      string     `json:"span"`
	Parent    string     `json:"parent,omitempty"`
	Name      string     `json:"name"`
	StartNS   int64      `json:"start_ns"`
	EndNS     int64      `json:"end_ns"`
	Attrs     []wireAttr `json:"attrs,omitempty"`
	Events    []Event    `json:"events,omitempty"`
	Truncated int32      `json:"truncated,omitempty"`
}

type wireAttr struct {
	Key string  `json:"k"`
	Str *string `json:"s,omitempty"`
	Val *int64  `json:"v,omitempty"`
}

// MarshalJSON encodes the span in the documented wire shape.
func (d *SpanData) MarshalJSON() ([]byte, error) {
	w := wireSpan{
		Trace:     d.Trace.String(),
		Span:      d.ID.String(),
		Name:      d.Name,
		StartNS:   int64(d.Start),
		EndNS:     int64(d.End),
		Events:    d.Events,
		Truncated: d.Truncated,
	}
	if d.Parent != 0 {
		w.Parent = d.Parent.String()
	}
	for i := range d.Attrs {
		a := &d.Attrs[i]
		wa := wireAttr{Key: a.Key}
		if a.IsStr {
			wa.Str = &a.Str
		} else {
			v := a.Val
			wa.Val = &v
		}
		w.Attrs = append(w.Attrs, wa)
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the documented wire shape.
func (d *SpanData) UnmarshalJSON(b []byte) error {
	var w wireSpan
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	var err error
	if d.Trace, err = parseTraceID(w.Trace); err != nil {
		return err
	}
	id, err := parseSpanID(w.Span)
	if err != nil {
		return err
	}
	d.ID = id
	d.Parent = 0
	if w.Parent != "" {
		if d.Parent, err = parseSpanID(w.Parent); err != nil {
			return err
		}
	}
	d.Name = w.Name
	d.Start = time.Duration(w.StartNS)
	d.End = time.Duration(w.EndNS)
	d.Events = w.Events
	d.Truncated = w.Truncated
	d.Attrs = d.Attrs[:0]
	for _, wa := range w.Attrs {
		a := Attr{Key: wa.Key}
		switch {
		case wa.Str != nil:
			a.Str, a.IsStr = *wa.Str, true
		case wa.Val != nil:
			a.Val = *wa.Val
		}
		d.Attrs = append(d.Attrs, a)
	}
	return nil
}

func parseTraceID(s string) (TraceID, error) {
	if len(s) != 32 {
		return TraceID{}, fmt.Errorf("span: bad trace id %q", s)
	}
	hi, ok1 := hexUint64(s[:16])
	lo, ok2 := hexUint64(s[16:])
	if !ok1 || !ok2 {
		return TraceID{}, fmt.Errorf("span: bad trace id %q", s)
	}
	return TraceID{Hi: hi, Lo: lo}, nil
}

func parseSpanID(s string) (SpanID, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("span: bad span id %q", s)
	}
	v, ok := hexUint64(s)
	if !ok {
		return 0, fmt.Errorf("span: bad span id %q", s)
	}
	return SpanID(v), nil
}

// WriteJSONL writes the spans one JSON object per line.
func WriteJSONL(w io.Writer, spans []*SpanData) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, d := range spans {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL reads spans back from a JSONL stream, skipping blank lines.
func ReadJSONL(r io.Reader) ([]*SpanData, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []*SpanData
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		d := &SpanData{}
		if err := json.Unmarshal(b, d); err != nil {
			return nil, fmt.Errorf("span: line %d: %w", line, err)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// RenderTree writes a human-readable forest of the given spans, grouped
// by trace and indented by parentage. Spans whose parent is absent from
// the dump (budget-dropped, or rotated out of a flight ring) render as
// roots with a marker. Within a trace, siblings sort by start time.
func RenderTree(w io.Writer, spans []*SpanData) error {
	// Group by trace, preserving first-seen trace order.
	byTrace := map[TraceID][]*SpanData{}
	var order []TraceID
	for _, d := range spans {
		if _, seen := byTrace[d.Trace]; !seen {
			order = append(order, d.Trace)
		}
		byTrace[d.Trace] = append(byTrace[d.Trace], d)
	}
	bw := bufio.NewWriter(w)
	for _, tid := range order {
		group := byTrace[tid]
		fmt.Fprintf(bw, "trace %s  (%d span", tid, len(group))
		if len(group) != 1 {
			bw.WriteByte('s')
		}
		bw.WriteString(")\n")
		ids := map[SpanID]bool{}
		children := map[SpanID][]*SpanData{}
		for _, d := range group {
			ids[d.ID] = true
		}
		var roots []*SpanData
		for _, d := range group {
			if d.Parent != 0 && ids[d.Parent] {
				children[d.Parent] = append(children[d.Parent], d)
			} else {
				roots = append(roots, d)
			}
		}
		byStart := func(s []*SpanData) {
			sort.SliceStable(s, func(i, j int) bool { return s[i].Start < s[j].Start })
		}
		byStart(roots)
		for k := range children {
			byStart(children[k])
		}
		var walk func(d *SpanData, depth int)
		walk = func(d *SpanData, depth int) {
			for i := 0; i < depth; i++ {
				bw.WriteString("  ")
			}
			orphan := ""
			if d.Parent != 0 && !ids[d.Parent] {
				orphan = "  (parent " + d.Parent.String() + " not in dump)"
			}
			fmt.Fprintf(bw, "%s %s  [%.6fs +%v]%s%s\n",
				d.ID, d.Name, d.Start.Seconds(), d.End-d.Start, renderAttrs(d.Attrs), orphan)
			for _, e := range d.Events {
				for i := 0; i <= depth; i++ {
					bw.WriteString("  ")
				}
				fmt.Fprintf(bw, "· %-14s @%.6fs", e.Name, e.At.Seconds())
				if e.Val != 0 {
					fmt.Fprintf(bw, "  v=%d", e.Val)
				}
				bw.WriteByte('\n')
			}
			if d.Truncated > 0 {
				for i := 0; i <= depth; i++ {
					bw.WriteString("  ")
				}
				fmt.Fprintf(bw, "· … %d attrs/events truncated\n", d.Truncated)
			}
			for _, c := range children[d.ID] {
				walk(c, depth+1)
			}
		}
		for _, r := range roots {
			walk(r, 1)
		}
	}
	return bw.Flush()
}

func renderAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	s := "  {"
	for i, a := range attrs {
		if i > 0 {
			s += " "
		}
		if a.IsStr {
			s += a.Key + "=" + a.Str
		} else {
			s += a.Key + "=" + strconv.FormatInt(a.Val, 10)
		}
	}
	return s + "}"
}

// CollectorSink is a simple bounded Sink that appends finished spans to a
// slice under a mutex — the offline collector behind cmd/expt -trace-out.
// Once max spans are held, further records are dropped and counted.
type CollectorSink struct {
	mu      sync.Mutex
	max     int
	spans   []*SpanData
	dropped int64
}

// NewCollectorSink builds a collector retaining at most max spans
// (max <= 0 selects the 1<<20 safety cap).
func NewCollectorSink(max int) *CollectorSink {
	if max <= 0 || max > 1<<20 {
		max = 1 << 20
	}
	return &CollectorSink{max: max}
}

// Record implements Sink.
func (c *CollectorSink) Record(d *SpanData) {
	if c == nil || d == nil {
		return
	}
	c.mu.Lock()
	if len(c.spans) < c.max {
		c.spans = append(c.spans, d)
	} else {
		c.dropped++
	}
	c.mu.Unlock()
}

// Spans returns the collected spans (shared slice; treat as read-only).
func (c *CollectorSink) Spans() []*SpanData {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spans
}

// Dropped returns how many spans were refused once full.
func (c *CollectorSink) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}
