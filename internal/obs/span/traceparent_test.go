package span

import (
	"strings"
	"testing"
	"time"
)

func TestTraceParentRoundTrip(t *testing.T) {
	sc := SpanContext{
		Trace:   TraceID{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210},
		Span:    SpanID(0xdeadbeefcafef00d),
		Sampled: true,
	}
	h := sc.TraceParent()
	if h != "00-0123456789abcdeffedcba9876543210-deadbeefcafef00d-01" {
		t.Fatalf("rendered %q", h)
	}
	got, ok := ParseTraceParent(h)
	if !ok {
		t.Fatalf("round trip failed on %q", h)
	}
	if got.Trace != sc.Trace || got.Span != sc.Span || !got.Sampled {
		t.Fatalf("parsed %+v, want %+v", got, sc)
	}
}

func TestTraceParentUnsampledFlag(t *testing.T) {
	sc := SpanContext{Trace: TraceID{Hi: 1, Lo: 2}, Span: 3}
	got, ok := ParseTraceParent(sc.TraceParent())
	if !ok || got.Sampled {
		t.Fatalf("parsed %+v ok=%v, want unsampled", got, ok)
	}
}

func TestParseTraceParentMalformed(t *testing.T) {
	valid := "00-0123456789abcdeffedcba9876543210-deadbeefcafef00d-01"
	bad := []string{
		"",
		"garbage",
		valid[:54],                          // truncated
		valid + "x",                         // version 00 must be exactly 55 chars
		strings.ToUpper(valid),              // uppercase hex is invalid per W3C
		"ff" + valid[2:],                    // version 0xff is reserved-invalid
		strings.Replace(valid, "-", "_", 3), // wrong separators
		"00-00000000000000000000000000000000-deadbeefcafef00d-01", // zero trace ID
		"00-0123456789abcdeffedcba9876543210-0000000000000000-01", // zero span ID
		"00-0123456789abcdeffedcba987654321g-deadbeefcafef00d-01", // non-hex digit
		"00-0123456789abcdeffedcba9876543210-deadbeefcafef00d-0g", // non-hex flags
	}
	for _, s := range bad {
		if sc, ok := ParseTraceParent(s); ok {
			t.Errorf("ParseTraceParent(%q) accepted: %+v", s, sc)
		}
	}
}

func TestParseTraceParentFutureVersion(t *testing.T) {
	// A future version with trailing fields must still parse the 00-shaped
	// prefix (W3C forward compatibility).
	s := "01-0123456789abcdeffedcba9876543210-deadbeefcafef00d-01-extrafield"
	sc, ok := ParseTraceParent(s)
	if !ok || !sc.Sampled || sc.Trace.Hi != 0x0123456789abcdef {
		t.Fatalf("future version rejected: %+v ok=%v", sc, ok)
	}
}

func TestStartRemoteSampledParentForcesSampling(t *testing.T) {
	sink := NewCollectorSink(0)
	// 1-in-a-million local sampling: any locally-rooted span is (all but
	// surely) skipped, so a recorded span proves the remote parent forced it.
	tr := New(Config{Sample: 1e-6, Sink: sink, Now: fixedClock(), Seed: 1})
	parent := SpanContext{Trace: TraceID{Hi: 7, Lo: 8}, Span: 9, Sampled: true}
	sp := tr.StartRemote(parent, "http")
	if sp == nil {
		t.Fatal("sampled remote parent did not force sampling")
	}
	if sp.TraceID() != parent.Trace {
		t.Fatalf("continued trace %v, want %v", sp.TraceID(), parent.Trace)
	}
	child := sp.Child("inner")
	child.End()
	sp.End()
	spans := sink.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	for _, d := range spans {
		if d.Trace != parent.Trace {
			t.Fatalf("span %q escaped the remote trace: %v", d.Name, d.Trace)
		}
	}
	// The server span's parent is the remote caller's span ID.
	for _, d := range spans {
		if d.Name == "http" && d.Parent != parent.Span {
			t.Fatalf("server span parent = %v, want remote %v", d.Parent, parent.Span)
		}
	}
}

func TestStartRemoteUnsampledParentFallsBack(t *testing.T) {
	tr := New(Config{Sample: 1, Now: fixedClock(), Seed: 1})
	parent := SpanContext{Trace: TraceID{Hi: 7, Lo: 8}, Span: 9, Sampled: false}
	sp := tr.StartRemote(parent, "http")
	if sp == nil {
		t.Fatal("full local sampling should still root")
	}
	if sp.TraceID() == parent.Trace {
		t.Fatal("unsampled remote parent must not be continued")
	}
	sp.End()
}

func TestStartRemoteDisabledTracer(t *testing.T) {
	var tr *Tracer
	parent := SpanContext{Trace: TraceID{Hi: 1, Lo: 1}, Span: 1, Sampled: true}
	if sp := tr.StartRemote(parent, "x"); sp != nil {
		t.Fatal("nil tracer started a remote span")
	}
}

func TestTraceParentOfLiveSpan(t *testing.T) {
	tr := New(Config{Sample: 1, Now: func() time.Duration { return 0 }, Seed: 5})
	sp := tr.Root("x")
	h := sp.Context().TraceParent()
	sc, ok := ParseTraceParent(h)
	if !ok || sc.Trace != sp.TraceID() || sc.Span != sp.Context().Span || !sc.Sampled {
		t.Fatalf("live span header %q parsed to %+v ok=%v", h, sc, ok)
	}
	sp.End()
}
