// W3C Trace Context interchange: rendering a SpanContext as a
// `traceparent` header value and parsing one back. Only version 00 and
// the sampled flag are honored; tracestate is deliberately out of scope.
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
package span

import "fmt"

// TraceParentHeader is the canonical header name (lowercase per W3C).
const TraceParentHeader = "traceparent"

// FlagSampled is the only trace-flag bit we honor.
const FlagSampled = 0x01

// TraceParent renders the context as a version-00 traceparent value.
// An invalid context renders as the all-zero (invalid) form.
func (sc SpanContext) TraceParent() string {
	flags := 0
	if sc.Sampled {
		flags = FlagSampled
	}
	return fmt.Sprintf("00-%016x%016x-%016x-%02x", sc.Trace.Hi, sc.Trace.Lo, uint64(sc.Span), flags)
}

// ParseTraceParent parses a traceparent header value. It returns ok=false
// for malformed input, unknown high versions (0xff), or the invalid
// all-zero trace/span IDs. Unknown-but-valid future versions (>0) are
// accepted per spec as long as the 00-shaped prefix parses.
func ParseTraceParent(s string) (SpanContext, bool) {
	// Fixed layout: 2+1+32+1+16+1+2 = 55 bytes minimum.
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	ver, ok := hexByte(s[0], s[1])
	if !ok || ver == 0xff {
		return SpanContext{}, false
	}
	if ver == 0 && len(s) != 55 {
		return SpanContext{}, false
	}
	var sc SpanContext
	if sc.Trace.Hi, ok = hexUint64(s[3:19]); !ok {
		return SpanContext{}, false
	}
	if sc.Trace.Lo, ok = hexUint64(s[19:35]); !ok {
		return SpanContext{}, false
	}
	var span uint64
	if span, ok = hexUint64(s[36:52]); !ok {
		return SpanContext{}, false
	}
	sc.Span = SpanID(span)
	flags, ok := hexByte(s[53], s[54])
	if !ok {
		return SpanContext{}, false
	}
	sc.Sampled = flags&FlagSampled != 0
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	// Uppercase hex is invalid in traceparent per W3C.
	return 0, false
}

func hexByte(hi, lo byte) (byte, bool) {
	h, ok1 := hexNibble(hi)
	l, ok2 := hexNibble(lo)
	return h<<4 | l, ok1 && ok2
}

func hexUint64(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < len(s); i++ {
		n, ok := hexNibble(s[i])
		if !ok {
			return 0, false
		}
		v = v<<4 | uint64(n)
	}
	return v, true
}
