// Packet-lifecycle event tracing: a bounded ring buffer of fixed-size
// event records that a component emits at each stage of a packet's life
// through the modulation layer. A nil Tracer (the default) costs one
// branch per site; a RingTracer costs one short critical section and no
// allocation per event.
package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// EventKind identifies a stage in a packet's life through the engine.
type EventKind uint8

// The packet-lifecycle event vocabulary.
const (
	// EvSubmit: a packet entered the layer. Size is the wire size.
	EvSubmit EventKind = iota + 1
	// EvBottleneckEnter: the packet reached the unified bottleneck queue.
	// Value is the time it must wait behind earlier packets (0 = idle).
	EvBottleneckEnter
	// EvBottleneckExit: the packet finished serializing. Value is the
	// serialization time paid (s·Vb, plus any inbound adjustment).
	EvBottleneckExit
	// EvCompensate: delay compensation (and/or the inbound-extra
	// artifact) adjusted an inbound packet's bottleneck cost. Value is
	// the signed time delta versus the unadjusted cost.
	EvCompensate
	// EvDrop: the drop lottery discarded the packet. Aux is a DropReason.
	EvDrop
	// EvQuantize: the delivery time was rounded to the clock tick. Value
	// is the signed rounding delta (quantized minus exact).
	EvQuantize
	// EvDeliver: the packet left the layer. Value is the total delay it
	// was scheduled to pay; Aux is 1 if it was sent immediately
	// (sub-half-tick) rather than via the timer.
	EvDeliver
	// EvTupleSwitch: the engine moved to the next replay tuple. Tuple is
	// the new tuple's ordinal (1-based count of tuples consumed); Value
	// is the new tuple's duration.
	EvTupleSwitch
)

// String names the kind for dumps.
func (k EventKind) String() string {
	switch k {
	case EvSubmit:
		return "submit"
	case EvBottleneckEnter:
		return "bneck-enter"
	case EvBottleneckExit:
		return "bneck-exit"
	case EvCompensate:
		return "compensate"
	case EvDrop:
		return "drop"
	case EvQuantize:
		return "quantize"
	case EvDeliver:
		return "deliver"
	case EvTupleSwitch:
		return "tuple-switch"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// DropReason says why a packet was discarded (Event.Aux for EvDrop).
type DropReason int64

// Drop reasons.
const (
	// DropLottery: the per-tuple loss probability fired.
	DropLottery DropReason = 1
)

// String names the reason for dumps.
func (r DropReason) String() string {
	if r == DropLottery {
		return "lottery"
	}
	return fmt.Sprintf("reason(%d)", int64(r))
}

// Event is one fixed-size lifecycle record. Which fields are meaningful
// depends on Kind; see the kind constants.
type Event struct {
	// At is the engine-clock timestamp.
	At   time.Duration
	Kind EventKind
	// Dir is the packet direction: 0 outbound, 1 inbound, -1 n/a.
	Dir int8
	// Size is the packet's wire size in bytes (0 when not packet-bound).
	Size int32
	// Tuple is the ordinal of the replay tuple in force (1-based count of
	// tuples consumed; 0 = none yet).
	Tuple int64
	// Value is the kind-specific duration (delay, wait, delta...).
	Value time.Duration
	// Aux is the kind-specific extra (drop reason, immediate flag...).
	Aux int64
}

// Format renders the event as one dump line.
func (e Event) Format() string {
	dir := "-"
	switch e.Dir {
	case 0:
		dir = ">"
	case 1:
		dir = "<"
	}
	s := fmt.Sprintf("%12.6f  %-12s %s %5dB  tuple=%d", e.At.Seconds(), e.Kind, dir, e.Size, e.Tuple)
	switch e.Kind {
	case EvBottleneckEnter:
		s += fmt.Sprintf("  wait=%v", e.Value)
	case EvBottleneckExit:
		s += fmt.Sprintf("  serialized=%v", e.Value)
	case EvCompensate:
		s += fmt.Sprintf("  adjust=%v", e.Value)
	case EvDrop:
		s += fmt.Sprintf("  reason=%s", DropReason(e.Aux))
	case EvQuantize:
		s += fmt.Sprintf("  delta=%v", e.Value)
	case EvDeliver:
		s += fmt.Sprintf("  delay=%v", e.Value)
		if e.Aux == 1 {
			s += " immediate"
		}
	case EvTupleSwitch:
		s += fmt.Sprintf("  dur=%v", e.Value)
	}
	return s
}

// Tracer receives lifecycle events. Implementations must not retain
// pointers into the event (it is a value) and must tolerate concurrent
// Record calls. Instrumented components hold a possibly-nil Tracer and
// guard each emission with one nil check, so the disabled path does no
// work and no allocation.
type Tracer interface {
	Record(Event)
}

// RingTracer is a bounded, mutex-guarded ring buffer of events: when full,
// the oldest event is overwritten and counted. It mirrors the collection
// phase's in-kernel ring (capture.Ring) — bounded memory, overrun
// accounting — applied to the engine's own life events.
type RingTracer struct {
	mu          sync.Mutex
	buf         []Event
	head        int // index of oldest
	n           int
	total       int64 // events ever recorded
	overwritten int64 // events lost to wrap-around
}

// DefaultTracerCapacity bounds the default event ring.
const DefaultTracerCapacity = 4096

// NewRingTracer creates a tracer holding at most capacity events
// (DefaultTracerCapacity if capacity <= 0).
func NewRingTracer(capacity int) *RingTracer {
	if capacity <= 0 {
		capacity = DefaultTracerCapacity
	}
	return &RingTracer{buf: make([]Event, capacity)}
}

// Record implements Tracer.
func (t *RingTracer) Record(e Event) {
	t.mu.Lock()
	if t.n == len(t.buf) {
		t.head = (t.head + 1) % len(t.buf)
		t.n--
		t.overwritten++
	}
	t.buf[(t.head+t.n)%len(t.buf)] = e
	t.n++
	t.total++
	t.mu.Unlock()
}

// Snapshot returns the buffered events oldest-first.
func (t *RingTracer) Snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.head+i)%len(t.buf)]
	}
	return out
}

// Len returns the number of buffered events.
func (t *RingTracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Total returns the number of events ever recorded.
func (t *RingTracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Overwritten returns how many events were lost to wrap-around.
func (t *RingTracer) Overwritten() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.overwritten
}

// Dump writes the buffered events, oldest first, one Format line each,
// with a trailing overrun note when events were lost.
func (t *RingTracer) Dump(w io.Writer) error {
	events := t.Snapshot()
	for _, e := range events {
		if _, err := fmt.Fprintln(w, e.Format()); err != nil {
			return err
		}
	}
	if over := t.Overwritten(); over > 0 {
		if _, err := fmt.Fprintf(w, "... %d earlier events overwritten (ring capacity %d)\n", over, len(t.buf)); err != nil {
			return err
		}
	}
	return nil
}
