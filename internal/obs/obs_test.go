package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // counters never go down
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var v *CounterVec
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(time.Second)
	v.With("x").Inc()
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	// A nil registry hands out nil metrics without panicking.
	r.Counter("x", "").Inc()
	r.Gauge("y", "").Set(1)
	r.Histogram("z", "", nil).Observe(time.Second)
	r.CounterVec("w", "", "l").With("a").Inc()
	r.GaugeFunc("f", "", func() float64 { return 1 })
}

func TestRegistryIdempotentAndKindCollision(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same", "")
	b := r.Counter("same", "")
	if a != b {
		t.Fatal("re-registration must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind collision must panic")
		}
	}()
	r.Gauge("same", "")
}

func TestHistogramBucketsAndStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_ns", "", []time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (le is inclusive)
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // +Inf
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	wantSum := 500*time.Microsecond + time.Millisecond + 5*time.Millisecond + time.Second
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	out := r.PrometheusString()
	for _, want := range []string{
		`h_ns_bucket{le="0.001"} 2`,
		`h_ns_bucket{le="0.01"} 3`,
		`h_ns_bucket{le="+Inf"} 4`,
		"h_ns_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestTickBucketsCoverNegativeDeltas(t *testing.T) {
	h := newHistogram(TickBuckets(10 * time.Millisecond))
	h.Observe(-4 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	// Mean of symmetric deltas is zero: rounding is unbiased.
	if h.Mean() != 0 {
		t.Fatalf("mean = %v, want 0", h.Mean())
	}
}

func TestCounterVecAndOverflow(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("drops_total", "", "tuple")
	v.With("1").Inc()
	v.With("1").Inc()
	v.With("2").Inc()
	out := r.PrometheusString()
	if !strings.Contains(out, `drops_total{tuple="1"} 2`) || !strings.Contains(out, `drops_total{tuple="2"} 1`) {
		t.Fatalf("vec output wrong:\n%s", out)
	}
	// Cardinality is bounded: past the cap, values collapse to overflow.
	for i := 0; i < VecMaxChildren+10; i++ {
		v.With(fmt.Sprint(i)).Inc()
	}
	if v.With("another-new-one") != v.With(OverflowLabel) {
		t.Fatal("expected overflow child once the vec is full")
	}
}

func TestPrometheusScalarFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("pkts_total", "packets").Add(3)
	r.Gauge("depth", "queue depth").Set(2)
	r.GaugeFunc("busy_seconds", "", func() float64 { return 0.25 })
	out := r.PrometheusString()
	for _, want := range []string{
		"# HELP pkts_total packets",
		"# TYPE pkts_total counter",
		"pkts_total 3",
		"# TYPE depth gauge",
		"depth 2",
		"busy_seconds 0.25",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDumpHumanReadable(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(7)
	r.Histogram("h", "", []time.Duration{time.Millisecond}).Observe(time.Microsecond)
	out := r.DumpString()
	if !strings.Contains(out, "a_total") || !strings.Contains(out, "7") {
		t.Fatalf("dump missing counter:\n%s", out)
	}
	if !strings.Contains(out, "count") {
		t.Fatalf("dump missing histogram stats:\n%s", out)
	}
}

func TestRingTracerWrapAround(t *testing.T) {
	tr := NewRingTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Kind: EvSubmit, Aux: int64(i)})
	}
	if tr.Len() != 4 || tr.Total() != 10 || tr.Overwritten() != 6 {
		t.Fatalf("len=%d total=%d over=%d", tr.Len(), tr.Total(), tr.Overwritten())
	}
	snap := tr.Snapshot()
	for i, e := range snap {
		if e.Aux != int64(6+i) {
			t.Fatalf("snapshot[%d].Aux = %d, want %d (oldest-first)", i, e.Aux, 6+i)
		}
	}
	var b strings.Builder
	if err := tr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "overwritten") {
		t.Fatalf("dump should note overrun:\n%s", b.String())
	}
}

func TestRingTracerConcurrentRecord(t *testing.T) {
	tr := NewRingTracer(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record(Event{Kind: EvDeliver})
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 8000 {
		t.Fatalf("total = %d, want 8000", tr.Total())
	}
}

func TestEventFormatNamesKinds(t *testing.T) {
	e := Event{At: time.Second, Kind: EvDrop, Dir: 1, Size: 1500, Tuple: 3, Aux: int64(DropLottery)}
	s := e.Format()
	for _, want := range []string{"drop", "1500", "tuple=3", "lottery"} {
		if !strings.Contains(s, want) {
			t.Fatalf("format %q missing %q", s, want)
		}
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tracemod_test_total", "a metric").Add(42)
	tr := NewRingTracer(16)
	tr.Record(Event{Kind: EvSubmit, Size: 100})
	srv, err := StartDebugServer("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "tracemod_test_total 42") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	if out := get("/metrics?format=text"); !strings.Contains(out, "tracemod_test_total") {
		t.Fatalf("/metrics?format=text missing counter:\n%s", out)
	}
	if out := get("/healthz"); !strings.Contains(out, "ok") {
		t.Fatalf("/healthz = %q", out)
	}
	if out := get("/debug/events"); !strings.Contains(out, "submit") {
		t.Fatalf("/debug/events missing event:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestUptimeGauge(t *testing.T) {
	r := NewRegistry()
	Uptime(r, time.Now().Add(-2*time.Second))
	out := r.PrometheusString()
	if !strings.Contains(out, "tracemod_uptime_seconds") {
		t.Fatalf("missing uptime gauge:\n%s", out)
	}
}

func TestGaugeVecAndRemove(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("farm_sessions_state", "", "session")
	gv.With("s-1").Set(2)
	gv.With("s-2").Set(5)
	if got := gv.With("s-1").Load(); got != 2 {
		t.Fatalf("s-1 = %d, want 2", got)
	}
	out := r.PrometheusString()
	if !strings.Contains(out, `farm_sessions_state{session="s-1"} 2`) ||
		!strings.Contains(out, `farm_sessions_state{session="s-2"} 5`) {
		t.Fatalf("gauge vec missing from export:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE farm_sessions_state gauge") {
		t.Fatalf("gauge vec exported with wrong type:\n%s", out)
	}

	// Removal drops the child from both export formats; re-creating the
	// label starts from zero.
	gv.Remove("s-1")
	gv.Remove("never-existed")
	out = r.PrometheusString()
	if strings.Contains(out, `session="s-1"`) {
		t.Fatalf("removed child still exported:\n%s", out)
	}
	if got := gv.With("s-1").Load(); got != 0 {
		t.Fatalf("recreated child = %d, want 0", got)
	}

	cv := r.CounterVec("farm_drops", "", "session")
	cv.With("s-1").Inc()
	cv.Remove("s-1")
	if strings.Contains(r.PrometheusString(), `farm_drops{session="s-1"}`) {
		t.Fatal("removed counter child still exported")
	}

	// Nil receivers stay no-ops.
	var nilGV *GaugeVec
	nilGV.With("x").Set(1)
	nilGV.Remove("x")
}
