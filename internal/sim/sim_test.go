package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(10, func() { got = append(got, 1) })
	s.At(5, func() { got = append(got, 0) })
	s.At(10, func() { got = append(got, 2) }) // same time: FIFO by seq
	s.Run()
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 10 {
		t.Fatalf("Now = %v, want 10", s.Now())
	}
}

func TestAtInPastClampsToNow(t *testing.T) {
	s := New(1)
	fired := Time(-1)
	s.At(100, func() {
		s.At(50, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 100 {
		t.Fatalf("past event fired at %v, want 100", fired)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %v after Run, want 3 events", fired)
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	n := 0
	s.At(1, func() { n++; s.Stop() })
	s.At(2, func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("ran %d events, want 1", n)
	}
}

func TestProcSleep(t *testing.T) {
	s := New(1)
	var wake []Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Nanosecond)
		wake = append(wake, p.Now())
		p.Sleep(10 * time.Nanosecond)
		wake = append(wake, p.Now())
	})
	s.Run()
	if len(wake) != 2 || wake[0] != 5 || wake[1] != 15 {
		t.Fatalf("wake times = %v, want [5 15]", wake)
	}
	if s.Procs() != 0 {
		t.Fatalf("procs = %d, want 0", s.Procs())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := New(7)
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			s.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(time.Duration(1+i) * time.Millisecond)
					log = append(log, name)
				}
			})
		}
		s.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("length changed across runs")
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("run %d diverged at %d: %v vs %v", trial, i, first, again)
			}
		}
	}
}

func TestChanSendRecv(t *testing.T) {
	s := New(1)
	c := NewChan[int](s, 2)
	var got []int
	s.Spawn("recv", func(p *Proc) {
		for {
			v, ok := c.Recv(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	s.Spawn("send", func(p *Proc) {
		for i := 0; i < 5; i++ {
			c.Send(p, i)
			p.Sleep(time.Microsecond)
		}
		c.Close()
	})
	s.Run()
	if len(got) != 5 {
		t.Fatalf("got %v, want 5 values", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want ordered 0..4", got)
		}
	}
}

func TestChanBackpressure(t *testing.T) {
	s := New(1)
	c := NewChan[int](s, 1)
	var sendDone Time
	s.Spawn("send", func(p *Proc) {
		c.Send(p, 1) // fills buffer
		c.Send(p, 2) // blocks until receiver drains
		sendDone = p.Now()
	})
	s.Spawn("recv", func(p *Proc) {
		p.Sleep(100 * time.Nanosecond)
		if v, ok := c.Recv(p); !ok || v != 1 {
			t.Errorf("first recv = %v,%v", v, ok)
		}
		if v, ok := c.Recv(p); !ok || v != 2 {
			t.Errorf("second recv = %v,%v", v, ok)
		}
	})
	s.Run()
	if sendDone < 100 {
		t.Fatalf("second send completed at %v, want >= 100 (after drain)", sendDone)
	}
}

func TestChanRecvTimeout(t *testing.T) {
	s := New(1)
	c := NewChan[string](s, 1)
	var timedOut, gotValue bool
	s.Spawn("recv", func(p *Proc) {
		_, _, timedOut = c.RecvTimeout(p, 10*time.Nanosecond)
		v, ok, to := c.RecvTimeout(p, 100*time.Nanosecond)
		gotValue = ok && !to && v == "hi"
	})
	s.At(50, func() { c.TrySend("hi") })
	s.Run()
	if !timedOut {
		t.Fatal("first recv should have timed out")
	}
	if !gotValue {
		t.Fatal("second recv should have received the value")
	}
}

func TestChanRecvTimeoutZero(t *testing.T) {
	s := New(1)
	c := NewChan[int](s, 1)
	var to bool
	s.Spawn("r", func(p *Proc) { _, _, to = c.RecvTimeout(p, 0) })
	s.Run()
	if !to {
		t.Fatal("zero deadline should time out immediately")
	}
}

func TestChanCloseWakesReceiver(t *testing.T) {
	s := New(1)
	c := NewChan[int](s, 1)
	var ok, returned bool
	s.Spawn("recv", func(p *Proc) {
		_, ok = c.Recv(p)
		returned = true
	})
	s.At(5, func() { c.Close() })
	s.Run()
	if !returned || ok {
		t.Fatalf("recv on closed chan: returned=%v ok=%v, want true,false", returned, ok)
	}
}

func TestChanCloseDrainsBuffer(t *testing.T) {
	s := New(1)
	c := NewChan[int](s, 4)
	c.TrySend(1)
	c.TrySend(2)
	c.Close()
	var got []int
	s.Spawn("recv", func(p *Proc) {
		for {
			v, ok := c.Recv(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	s.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("drained %v, want [1 2]", got)
	}
}

func TestTrySendFullBuffer(t *testing.T) {
	s := New(1)
	c := NewChan[int](s, 1)
	if !c.TrySend(1) {
		t.Fatal("first TrySend should succeed")
	}
	if c.TrySend(2) {
		t.Fatal("second TrySend should fail on full buffer")
	}
	if v, ok := c.TryRecv(); !ok || v != 1 {
		t.Fatalf("TryRecv = %v,%v", v, ok)
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	s := New(42)
	if s.RNG("a") != s.RNG("a") {
		t.Fatal("same name must return the same cached stream")
	}
	a1 := s.RNG("a").Int63()
	b1 := s.RNG("b").Int63()
	if a1 == b1 {
		t.Fatal("different names should give different streams")
	}
	// The stream is deterministic in (seed, name): a fresh scheduler with
	// the same seed replays it, a different seed diverges.
	if got := New(42).RNG("a").Int63(); got != a1 {
		t.Fatalf("same seed+name must replay: %d vs %d", got, a1)
	}
	if New(43).RNG("a").Int63() == a1 {
		t.Fatal("different seeds should give different streams")
	}
	if New(-42).RNG("a").Int63() == a1 {
		t.Fatal("negative seed must hash distinctly")
	}
}

func TestRNGLookupDoesNotAllocate(t *testing.T) {
	s := New(7)
	s.RNG("component") // create and cache
	if allocs := testing.AllocsPerRun(100, func() { s.RNG("component") }); allocs != 0 {
		t.Fatalf("cached RNG lookup allocates %v/op, want 0", allocs)
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.AfterTimer(time.Second, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Fatal("first Stop must report cancellation")
	}
	if tm.Stop() || tm.Active() {
		t.Fatal("second Stop must be a no-op")
	}
	if s.Pending() != 0 {
		t.Fatalf("cancelled timer still pending: %d", s.Pending())
	}
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerFiresThenStopIsNoop(t *testing.T) {
	s := New(1)
	n := 0
	tm := s.AfterTimer(time.Millisecond, func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("timer fired %d times", n)
	}
	if tm.Stop() || tm.Active() {
		t.Fatal("Stop after firing must be a no-op")
	}
	// The fired event was recycled; a stale handle must not disturb a new
	// event occupying the same pooled struct.
	m := 0
	s.After(time.Millisecond, func() { m++ })
	if tm.Stop() {
		t.Fatal("stale handle cancelled a recycled event")
	}
	s.Run()
	if m != 1 {
		t.Fatal("recycled event did not fire")
	}
}

func TestTimerCancellationKeepsOrder(t *testing.T) {
	s := New(1)
	var order []int
	var timers []Timer
	for i := 0; i < 100; i++ {
		i := i
		timers = append(timers, s.AtTimer(Time(i%10)*Time(time.Millisecond), func() {
			order = append(order, i)
		}))
	}
	// Cancel every third timer, including ones at the heap top.
	want := []int{}
	cancelled := map[int]bool{}
	for i, tm := range timers {
		if i%3 == 0 {
			tm.Stop()
			cancelled[i] = true
		}
	}
	// Expected order: by (time bucket, schedule order), skipping cancelled.
	for bucket := 0; bucket < 10; bucket++ {
		for i := 0; i < 100; i++ {
			if i%10 == bucket && !cancelled[i] {
				want = append(want, i)
			}
		}
	}
	s.Run()
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %d, want %d", i, order[i], want[i])
		}
	}
}

func TestMassCancellationCompacts(t *testing.T) {
	s := New(1)
	var timers []Timer
	for i := 0; i < 10000; i++ {
		timers = append(timers, s.AfterTimer(time.Duration(i+1)*time.Second, func() {}))
	}
	for _, tm := range timers {
		tm.Stop()
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after cancelling everything", s.Pending())
	}
	if n := len(s.events); n > 5001 {
		t.Fatalf("heap holds %d slots after mass cancellation; compaction failed", n)
	}
	fired := false
	s.After(time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("scheduler broken after compaction")
	}
}

// TestCancelEverythingCompactsEmpty stops enough timers to trip compaction
// (dead > 64) with zero live events remaining. Regression test: compact()'s
// Floyd heapify used to index live[0] on an empty heap because (0-2)/4
// truncates to 0 in Go.
func TestCancelEverythingCompactsEmpty(t *testing.T) {
	s := New(1)
	var timers []Timer
	for i := 0; i < 65; i++ {
		timers = append(timers, s.AfterTimer(time.Duration(i+1)*time.Millisecond, func() {}))
	}
	for _, tm := range timers {
		tm.Stop()
	}
	if s.Pending() != 0 || len(s.events) != 0 {
		t.Fatalf("pending = %d, heap slots = %d after cancelling everything", s.Pending(), len(s.events))
	}
	fired := false
	s.After(time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("scheduler broken after compacting to empty")
	}
}

// TestSchedulerSteadyStateNoAllocs is the free-list guarantee: once the
// pool is warm, At/After/AtTimer allocate nothing per event.
func TestSchedulerSteadyStateNoAllocs(t *testing.T) {
	s := New(1)
	fn := func() {}
	for i := 0; i < 256; i++ {
		s.After(time.Duration(i)*time.Microsecond, fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(time.Microsecond, fn)
		s.After(2*time.Microsecond, fn)
		tm := s.AfterTimer(3*time.Microsecond, fn)
		tm.Stop()
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state scheduling allocates %v/op, want 0", allocs)
	}
}

// TestHeapOrderingProperty cross-checks the 4-ary heap against a reference
// sort over a pseudo-random schedule.
func TestHeapOrderingProperty(t *testing.T) {
	s := New(99)
	rng := s.RNG("heap-test")
	type stamp struct {
		at  Time
		seq int
	}
	var got []stamp
	n := 0
	for i := 0; i < 5000; i++ {
		at := Time(rng.Int63n(1000)) * Time(time.Millisecond)
		seq := n
		n++
		s.At(at, func() { got = append(got, stamp{at, seq}) })
	}
	s.Run()
	if len(got) != 5000 {
		t.Fatalf("fired %d events", len(got))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
			t.Fatalf("out of order at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	s := New(1)
	c := NewChan[int](s, 1)
	s.Spawn("stuck", func(p *Proc) { c.Recv(p) })
	s.Run()
}

func TestWaitGroup(t *testing.T) {
	s := New(1)
	wg := NewWaitGroup(s)
	var finished Time
	for i := 1; i <= 3; i++ {
		d := time.Duration(i*10) * time.Nanosecond
		wg.Go("worker", func(p *Proc) { p.Sleep(d) })
	}
	s.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		finished = p.Now()
	})
	s.Run()
	if finished != 30 {
		t.Fatalf("waiter resumed at %v, want 30 (slowest worker)", finished)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	s := New(1)
	wg := NewWaitGroup(s)
	ran := false
	s.Spawn("w", func(p *Proc) { wg.Wait(p); ran = true })
	s.Run()
	if !ran {
		t.Fatal("Wait on zero counter must not block")
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(0).Add(1500 * time.Millisecond)
	if tm.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", tm.Seconds())
	}
	if tm.Sub(Time(0).Add(time.Second)) != 500*time.Millisecond {
		t.Fatalf("Sub wrong")
	}
}

// Property: for any set of delays, processes wake in sorted delay order and
// virtual time never decreases.
func TestSleepOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 || len(delays) > 64 {
			return true
		}
		s := New(9)
		var wakes []time.Duration
		for _, d := range delays {
			d := time.Duration(d) * time.Nanosecond
			s.Spawn("p", func(p *Proc) {
				p.Sleep(d)
				wakes = append(wakes, p.Now().Duration())
			})
		}
		s.Run()
		if len(wakes) != len(delays) {
			return false
		}
		for i := 1; i < len(wakes); i++ {
			if wakes[i] < wakes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a FIFO channel preserves order for any sequence of values.
func TestChanFIFOProperty(t *testing.T) {
	f := func(vals []int32) bool {
		if len(vals) > 256 {
			vals = vals[:256]
		}
		s := New(3)
		c := NewChan[int32](s, 8)
		var got []int32
		s.Spawn("send", func(p *Proc) {
			for _, v := range vals {
				c.Send(p, v)
			}
			c.Close()
		})
		s.Spawn("recv", func(p *Proc) {
			for {
				v, ok := c.Recv(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		s.Run()
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
