// Package sim provides a deterministic virtual-time simulation kernel.
//
// The kernel combines an event heap with cooperatively scheduled processes.
// Processes are ordinary goroutines, but exactly one of them (or the
// scheduler itself) runs at any instant: when a process blocks on a kernel
// primitive (Sleep, channel operations, Wait) control is handed back to the
// scheduler with a strict channel handoff. Events with equal timestamps fire
// in the order they were scheduled. Together these rules make every run
// bit-reproducible for a given seed, which is the property the trace
// modulation methodology exists to provide.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is an absolute virtual timestamp in nanoseconds since the start of
// the simulation.
type Time int64

// Duration re-exports time.Duration for callers that want a single import.
type Duration = time.Duration

// Add returns the timestamp d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the absolute timestamp to a duration since time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the timestamp as floating-point seconds since time zero.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string { return time.Duration(t).String() }

// event is one scheduled callback. Events are pooled per scheduler: At
// draws from the free list and the run loop recycles fired (or cancelled)
// events back onto it, so steady-state scheduling allocates nothing.
type event struct {
	at        Time
	seq       uint64 // schedule order; 0 means "recycled, not in the heap"
	fn        func()
	cancelled bool
}

// eventBefore is the heap order: time, then schedule order, so events with
// equal timestamps fire in the order they were scheduled.
func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Scheduler owns virtual time. It must only be manipulated from the
// goroutine that calls Run (directly or from event callbacks) or from the
// single process it has currently resumed.
type Scheduler struct {
	now Time
	// events is a 4-ary min-heap ordered by eventBefore. Quaternary beats
	// binary here: sift-downs touch four children per cache line worth of
	// pointers and the tree is half as deep, which is where the run loop
	// spends its time once per-event allocation is gone.
	events []*event
	free   []*event // recycled events (the per-scheduler pool)
	dead   int      // cancelled events still occupying heap slots
	seq    uint64
	seed   int64
	rngs   map[string]*rand.Rand // memoized per-component streams

	// parked is signalled by a running process when it blocks or exits,
	// returning control to the scheduler. It is unbuffered so the handoff
	// is strict.
	parked chan struct{}

	procs   int // live processes (spawned, not yet exited)
	stopped bool
}

// New returns a scheduler whose RNG streams derive from seed.
func New(seed int64) *Scheduler {
	return &Scheduler{seed: seed, parked: make(chan struct{})}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Seed returns the base seed the scheduler was created with.
func (s *Scheduler) Seed() int64 { return s.seed }

// RNG returns a deterministic random stream for the named component. Streams
// for distinct names are independent, so adding a component does not perturb
// the draws seen by others. The stream is created on first use and cached:
// calling RNG with the same name again returns the same stream (continuing
// where it left off) and performs no allocation.
func (s *Scheduler) RNG(name string) *rand.Rand {
	if r, ok := s.rngs[name]; ok {
		return r
	}
	// Inline FNV-1a over "<seed>|<name>" without the fmt/hash allocations.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for v := uint64(s.seed); ; v /= 10 {
		h = (h ^ (v%10 + '0')) * prime64
		if v < 10 {
			break
		}
	}
	h = (h ^ '|') * prime64
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime64
	}
	r := rand.New(rand.NewSource(int64(h)))
	if s.rngs == nil {
		s.rngs = make(map[string]*rand.Rand)
	}
	s.rngs[name] = r
	return r
}

// schedule places a pooled event on the heap and returns it.
func (s *Scheduler) schedule(t Time, fn func()) *event {
	if t < s.now {
		t = s.now
	}
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = new(event)
	}
	s.seq++
	e.at, e.seq, e.fn, e.cancelled = t, s.seq, fn, false
	s.heapPush(e)
	return e
}

// recycle returns a popped event to the pool. Zeroing seq disarms any Timer
// still holding the event (a stale Stop compares seq and no-ops), and
// dropping fn releases the closure.
func (s *Scheduler) recycle(e *event) {
	e.fn = nil
	e.seq = 0
	e.cancelled = false
	s.free = append(s.free, e)
}

// heapPush inserts into the 4-ary heap.
func (s *Scheduler) heapPush(e *event) {
	s.events = append(s.events, e)
	i := len(s.events) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventBefore(e, s.events[p]) {
			break
		}
		s.events[i] = s.events[p]
		i = p
	}
	s.events[i] = e
}

// heapPop removes and returns the earliest event.
func (s *Scheduler) heapPop() *event {
	h := s.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	s.events = h[:n]
	if n > 0 {
		s.siftDown(last, 0)
	}
	return top
}

// siftDown places e at slot i of the 4-ary heap, walking it toward the
// leaves past any smaller children.
func (s *Scheduler) siftDown(e *event, i int) {
	h := s.events
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		// Pick the smallest of up to four children.
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventBefore(h[c], h[min]) {
				min = c
			}
		}
		if !eventBefore(h[min], e) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = e
}

// compact rebuilds the heap without its cancelled events once they dominate,
// bounding the memory a burst of Stop calls can pin.
func (s *Scheduler) compact() {
	live := s.events[:0]
	for _, e := range s.events {
		if e.cancelled {
			s.recycle(e)
		} else {
			live = append(live, e)
		}
	}
	for i := len(live); i < len(s.events); i++ {
		s.events[i] = nil
	}
	s.events = live
	s.dead = 0
	// Floyd heapify: sift down every internal node. The n > 1 guard matters:
	// for n == 0, (n-2)/4 truncates to 0 in Go and the loop would index an
	// empty slice.
	if n := len(live); n > 1 {
		for i := (n - 2) / 4; i >= 0; i-- {
			s.siftDown(live[i], i)
		}
	}
}

// At schedules fn to run at absolute time t. Scheduling in the past runs the
// event at the current time (events never travel backwards).
func (s *Scheduler) At(t Time, fn func()) { s.schedule(t, fn) }

// After schedules fn to run d from now.
func (s *Scheduler) After(d time.Duration, fn func()) { s.schedule(s.now.Add(d), fn) }

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. The zero Timer is inert. Like every scheduler operation, Stop must
// be called from scheduler context (an event callback or the currently
// resumed process).
type Timer struct {
	s   *Scheduler
	e   *event
	seq uint64
}

// AtTimer is At returning a cancellable handle.
func (s *Scheduler) AtTimer(t Time, fn func()) Timer {
	e := s.schedule(t, fn)
	return Timer{s: s, e: e, seq: e.seq}
}

// AfterTimer is After returning a cancellable handle.
func (s *Scheduler) AfterTimer(d time.Duration, fn func()) Timer {
	return s.AtTimer(s.now.Add(d), fn)
}

// Stop cancels the timer and reports whether it was still pending.
// Cancellation is lazy: the event keeps its heap slot (its closure is
// released immediately) and is recycled when it surfaces, or earlier by
// compaction when cancelled events outnumber live ones. Stopping an
// already-fired or already-stopped timer is a no-op.
func (t Timer) Stop() bool {
	e := t.e
	if e == nil || e.seq != t.seq || e.cancelled {
		return false
	}
	e.cancelled = true
	e.fn = nil
	t.s.dead++
	if t.s.dead > 64 && t.s.dead > len(t.s.events)/2 {
		t.s.compact()
	}
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.e != nil && t.e.seq == t.seq && !t.e.cancelled
}

// Stop makes Run return after the current event completes. Pending events
// remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// the final virtual time. Run panics if any process is still blocked when
// the event queue drains: that indicates a deadlock in the simulated system.
func (s *Scheduler) Run() Time {
	return s.run(func() bool { return false }, true)
}

// RunUntil executes events until virtual time would exceed t, the queue
// drains, or Stop is called. Events at exactly t still run. Unlike Run,
// draining with blocked processes is not treated as a deadlock: bounded
// runs routinely leave daemons parked (e.g. a looping modulation daemon
// blocked on a full buffer).
func (s *Scheduler) RunUntil(t Time) Time {
	return s.run(func() bool {
		e := s.peekLive()
		return e != nil && e.at > t
	}, false)
}

// RunFor executes events for d of virtual time from now.
func (s *Scheduler) RunFor(d time.Duration) Time { return s.RunUntil(s.now.Add(d)) }

// peekLive returns the earliest live event, discarding cancelled ones that
// have surfaced at the top of the heap.
func (s *Scheduler) peekLive() *event {
	for len(s.events) > 0 {
		e := s.events[0]
		if !e.cancelled {
			return e
		}
		s.heapPop()
		s.dead--
		s.recycle(e)
	}
	return nil
}

func (s *Scheduler) run(done func() bool, checkDeadlock bool) Time {
	s.stopped = false
	for !s.stopped {
		if s.peekLive() == nil || done() {
			break
		}
		e := s.heapPop()
		s.now = e.at
		fn := e.fn
		s.recycle(e)
		fn()
	}
	if checkDeadlock && !s.stopped && s.Idle() && s.procs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events at %v", s.procs, s.now))
	}
	return s.now
}

// Idle reports whether no live events remain.
func (s *Scheduler) Idle() bool { return len(s.events)-s.dead == 0 }

// Pending returns the number of queued live events.
func (s *Scheduler) Pending() int { return len(s.events) - s.dead }

// Procs returns the number of live processes.
func (s *Scheduler) Procs() int { return s.procs }

// Proc is a cooperatively scheduled simulated process. All Proc methods must
// be called from the process's own goroutine.
type Proc struct {
	s      *Scheduler
	name   string
	resume chan struct{}
	done   bool
	// unparkFn caches the unpark method value so hot primitives (Sleep,
	// channel wakeups) can schedule it without allocating a new closure
	// per call.
	unparkFn func()
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sched returns the owning scheduler.
func (p *Proc) Sched() *Scheduler { return p.s }

// Now returns current virtual time.
func (p *Proc) Now() Time { return p.s.now }

// Spawn creates a process executing fn. fn starts at the current virtual
// time, after already-queued events at this instant.
func (s *Scheduler) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{s: s, name: name, resume: make(chan struct{})}
	p.unparkFn = p.unpark
	s.procs++
	s.At(s.now, func() {
		go func() {
			<-p.resume
			fn(p)
			p.done = true
			s.procs--
			s.parked <- struct{}{}
		}()
		p.unparkLocked()
	})
	return p
}

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// park blocks the calling process and returns control to the scheduler.
// Someone must later call unpark (via a scheduled event) to resume it.
func (p *Proc) park() {
	p.s.parked <- struct{}{}
	<-p.resume
}

// unpark resumes p and waits until it parks again or exits. It must be
// called from scheduler context (inside an event callback), never from
// another process.
func (p *Proc) unpark() { p.unparkLocked() }

func (p *Proc) unparkLocked() {
	p.resume <- struct{}{}
	<-p.s.parked
}

// Sleep suspends the process for d of virtual time. Non-positive durations
// yield to other events scheduled at the current instant.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.s.After(d, p.unparkFn)
	p.park()
}

// Yield reschedules the process after all events queued at the current
// instant.
func (p *Proc) Yield() { p.Sleep(0) }

// waiter is a parked process waiting on a channel or condition, with the
// slot through which a value is delivered.
type waiter[T any] struct {
	p        *Proc
	val      T
	ok       bool
	done     bool // value delivered or channel closed
	timedOut bool
}

// Chan is an ordered, optionally buffered channel usable from processes
// (blocking operations) and from event context (non-blocking operations).
type Chan[T any] struct {
	s      *Scheduler
	buf    []T
	cap    int // 0 means rendezvous is not supported; see NewChan
	closed bool
	recvW  []*waiter[T]
	sendW  []*waiter[T]
}

// NewChan creates a channel with the given buffer capacity. Capacity must be
// at least 1: rendezvous channels are not needed by this codebase and keeping
// a buffer makes event-context sends well-defined.
func NewChan[T any](s *Scheduler, capacity int) *Chan[T] {
	if capacity < 1 {
		panic("sim: NewChan capacity must be >= 1")
	}
	return &Chan[T]{s: s, cap: capacity}
}

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Cap returns the buffer capacity.
func (c *Chan[T]) Cap() int { return c.cap }

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed }

// Close closes the channel. Blocked receivers drain remaining buffered
// values; once empty they observe ok=false. Sending on a closed channel
// panics, matching Go channel semantics.
func (c *Chan[T]) Close() {
	if c.closed {
		return
	}
	c.closed = true
	// Wake receivers that cannot be satisfied from the buffer.
	for len(c.recvW) > 0 && len(c.buf) == 0 {
		w := c.popRecv()
		if w == nil {
			break
		}
		w.done = true
		w.ok = false
		c.s.At(c.s.now, w.p.unparkFn)
	}
}

func (c *Chan[T]) popRecv() *waiter[T] {
	for len(c.recvW) > 0 {
		w := c.recvW[0]
		c.recvW = c.recvW[1:]
		if w.done || w.timedOut {
			continue
		}
		return w
	}
	return nil
}

func (c *Chan[T]) popSend() *waiter[T] {
	for len(c.sendW) > 0 {
		w := c.sendW[0]
		c.sendW = c.sendW[1:]
		if w.done || w.timedOut {
			continue
		}
		return w
	}
	return nil
}

// deliver hands v to a waiting receiver if any; reports whether delivered.
// Must run in scheduler context or from the single running process.
func (c *Chan[T]) deliver(v T) bool {
	w := c.popRecv()
	if w == nil {
		return false
	}
	w.val = v
	w.ok = true
	w.done = true
	c.s.At(c.s.now, w.p.unparkFn)
	return true
}

// TrySend enqueues v without blocking. It reports false if the buffer is
// full and no receiver is waiting. Safe from event context.
func (c *Chan[T]) TrySend(v T) bool {
	if c.closed {
		panic("sim: send on closed Chan")
	}
	if len(c.buf) == 0 && c.deliver(v) {
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Send blocks the calling process until the value is accepted.
func (c *Chan[T]) Send(p *Proc, v T) {
	if c.TrySend(v) {
		return
	}
	w := &waiter[T]{p: p, val: v}
	c.sendW = append(c.sendW, w)
	p.park()
	if !w.done {
		panic("sim: sender resumed without completion")
	}
}

// TryRecv receives without blocking. ok reports whether a value was
// received. Safe from event context.
func (c *Chan[T]) TryRecv() (T, bool) {
	var zero T
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[1:]
		c.admitSender()
		return v, true
	}
	return zero, false
}

// admitSender moves one blocked sender's value into the buffer (or to a
// receiver) after space frees up.
func (c *Chan[T]) admitSender() {
	w := c.popSend()
	if w == nil {
		return
	}
	w.done = true
	if !c.deliver(w.val) {
		c.buf = append(c.buf, w.val)
	}
	c.s.At(c.s.now, w.p.unparkFn)
}

// Recv blocks the calling process until a value arrives or the channel is
// closed and drained; ok is false in the latter case.
func (c *Chan[T]) Recv(p *Proc) (T, bool) {
	if v, ok := c.TryRecv(); ok {
		return v, true
	}
	if c.closed {
		var zero T
		return zero, false
	}
	w := &waiter[T]{p: p}
	c.recvW = append(c.recvW, w)
	p.park()
	return w.val, w.ok
}

// RecvTimeout is Recv with a deadline d from now. timedOut reports whether
// the deadline elapsed before a value arrived.
func (c *Chan[T]) RecvTimeout(p *Proc, d time.Duration) (v T, ok bool, timedOut bool) {
	if v, ok := c.TryRecv(); ok {
		return v, true, false
	}
	if c.closed {
		var zero T
		return zero, false, false
	}
	if d <= 0 {
		var zero T
		return zero, false, true
	}
	w := &waiter[T]{p: p}
	c.recvW = append(c.recvW, w)
	c.s.After(d, func() {
		if w.done {
			return
		}
		w.timedOut = true
		c.s.At(c.s.now, p.unparkFn)
	})
	p.park()
	if w.timedOut && w.done {
		// Value arrived in the same instant the timer fired and was
		// delivered first; prefer the value.
		w.timedOut = false
	}
	return w.val, w.ok, w.timedOut
}

// WaitGroup tracks completion of a set of processes or activities in
// virtual time.
type WaitGroup struct {
	s     *Scheduler
	count int
	wait  []*Proc
}

// NewWaitGroup returns a WaitGroup bound to s.
func NewWaitGroup(s *Scheduler) *WaitGroup { return &WaitGroup{s: s} }

// Add increments the counter by n.
func (wg *WaitGroup) Add(n int) { wg.count += n }

// Done decrements the counter; at zero all waiters resume.
func (wg *WaitGroup) Done() {
	wg.count--
	if wg.count < 0 {
		panic("sim: WaitGroup counter below zero")
	}
	if wg.count == 0 {
		for _, p := range wg.wait {
			wg.s.At(wg.s.now, p.unparkFn)
		}
		wg.wait = nil
	}
}

// Wait blocks the calling process until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.wait = append(wg.wait, p)
	p.park()
}

// Go spawns fn as a process tracked by the WaitGroup.
func (wg *WaitGroup) Go(name string, fn func(p *Proc)) {
	wg.Add(1)
	wg.s.Spawn(name, func(p *Proc) {
		defer wg.Done()
		fn(p)
	})
}
