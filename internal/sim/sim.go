// Package sim provides a deterministic virtual-time simulation kernel.
//
// The kernel combines an event heap with cooperatively scheduled processes.
// Processes are ordinary goroutines, but exactly one of them (or the
// scheduler itself) runs at any instant: when a process blocks on a kernel
// primitive (Sleep, channel operations, Wait) control is handed back to the
// scheduler with a strict channel handoff. Events with equal timestamps fire
// in the order they were scheduled. Together these rules make every run
// bit-reproducible for a given seed, which is the property the trace
// modulation methodology exists to provide.
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Time is an absolute virtual timestamp in nanoseconds since the start of
// the simulation.
type Time int64

// Duration re-exports time.Duration for callers that want a single import.
type Duration = time.Duration

// Add returns the timestamp d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the absolute timestamp to a duration since time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the timestamp as floating-point seconds since time zero.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string { return time.Duration(t).String() }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event { return h[0] }

// Scheduler owns virtual time. It must only be manipulated from the
// goroutine that calls Run (directly or from event callbacks) or from the
// single process it has currently resumed.
type Scheduler struct {
	now    Time
	events eventHeap
	seq    uint64
	seed   int64

	// parked is signalled by a running process when it blocks or exits,
	// returning control to the scheduler. It is unbuffered so the handoff
	// is strict.
	parked chan struct{}

	procs   int // live processes (spawned, not yet exited)
	stopped bool
}

// New returns a scheduler whose RNG streams derive from seed.
func New(seed int64) *Scheduler {
	return &Scheduler{seed: seed, parked: make(chan struct{})}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Seed returns the base seed the scheduler was created with.
func (s *Scheduler) Seed() int64 { return s.seed }

// RNG returns a deterministic random stream for the named component. Streams
// for distinct names are independent, so adding a component does not perturb
// the draws seen by others.
func (s *Scheduler) RNG(name string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", s.seed, name)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// At schedules fn to run at absolute time t. Scheduling in the past runs the
// event at the current time (events never travel backwards).
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d time.Duration, fn func()) { s.At(s.now.Add(d), fn) }

// Stop makes Run return after the current event completes. Pending events
// remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// the final virtual time. Run panics if any process is still blocked when
// the event queue drains: that indicates a deadlock in the simulated system.
func (s *Scheduler) Run() Time {
	return s.run(func() bool { return false }, true)
}

// RunUntil executes events until virtual time would exceed t, the queue
// drains, or Stop is called. Events at exactly t still run. Unlike Run,
// draining with blocked processes is not treated as a deadlock: bounded
// runs routinely leave daemons parked (e.g. a looping modulation daemon
// blocked on a full buffer).
func (s *Scheduler) RunUntil(t Time) Time {
	return s.run(func() bool { return s.events.Len() > 0 && s.events.peek().at > t }, false)
}

// RunFor executes events for d of virtual time from now.
func (s *Scheduler) RunFor(d time.Duration) Time { return s.RunUntil(s.now.Add(d)) }

func (s *Scheduler) run(done func() bool, checkDeadlock bool) Time {
	s.stopped = false
	for s.events.Len() > 0 && !s.stopped && !done() {
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		e.fn()
	}
	if checkDeadlock && !s.stopped && s.events.Len() == 0 && s.procs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events at %v", s.procs, s.now))
	}
	return s.now
}

// Idle reports whether no events remain.
func (s *Scheduler) Idle() bool { return s.events.Len() == 0 }

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return s.events.Len() }

// Procs returns the number of live processes.
func (s *Scheduler) Procs() int { return s.procs }

// Proc is a cooperatively scheduled simulated process. All Proc methods must
// be called from the process's own goroutine.
type Proc struct {
	s      *Scheduler
	name   string
	resume chan struct{}
	done   bool
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sched returns the owning scheduler.
func (p *Proc) Sched() *Scheduler { return p.s }

// Now returns current virtual time.
func (p *Proc) Now() Time { return p.s.now }

// Spawn creates a process executing fn. fn starts at the current virtual
// time, after already-queued events at this instant.
func (s *Scheduler) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{s: s, name: name, resume: make(chan struct{})}
	s.procs++
	s.At(s.now, func() {
		go func() {
			<-p.resume
			fn(p)
			p.done = true
			s.procs--
			s.parked <- struct{}{}
		}()
		p.unparkLocked()
	})
	return p
}

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// park blocks the calling process and returns control to the scheduler.
// Someone must later call unpark (via a scheduled event) to resume it.
func (p *Proc) park() {
	p.s.parked <- struct{}{}
	<-p.resume
}

// unpark resumes p and waits until it parks again or exits. It must be
// called from scheduler context (inside an event callback), never from
// another process.
func (p *Proc) unpark() { p.unparkLocked() }

func (p *Proc) unparkLocked() {
	p.resume <- struct{}{}
	<-p.s.parked
}

// Sleep suspends the process for d of virtual time. Non-positive durations
// yield to other events scheduled at the current instant.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.s.After(d, p.unpark)
	p.park()
}

// Yield reschedules the process after all events queued at the current
// instant.
func (p *Proc) Yield() { p.Sleep(0) }

// waiter is a parked process waiting on a channel or condition, with the
// slot through which a value is delivered.
type waiter[T any] struct {
	p        *Proc
	val      T
	ok       bool
	done     bool // value delivered or channel closed
	timedOut bool
}

// Chan is an ordered, optionally buffered channel usable from processes
// (blocking operations) and from event context (non-blocking operations).
type Chan[T any] struct {
	s      *Scheduler
	buf    []T
	cap    int // 0 means rendezvous is not supported; see NewChan
	closed bool
	recvW  []*waiter[T]
	sendW  []*waiter[T]
}

// NewChan creates a channel with the given buffer capacity. Capacity must be
// at least 1: rendezvous channels are not needed by this codebase and keeping
// a buffer makes event-context sends well-defined.
func NewChan[T any](s *Scheduler, capacity int) *Chan[T] {
	if capacity < 1 {
		panic("sim: NewChan capacity must be >= 1")
	}
	return &Chan[T]{s: s, cap: capacity}
}

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Cap returns the buffer capacity.
func (c *Chan[T]) Cap() int { return c.cap }

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed }

// Close closes the channel. Blocked receivers drain remaining buffered
// values; once empty they observe ok=false. Sending on a closed channel
// panics, matching Go channel semantics.
func (c *Chan[T]) Close() {
	if c.closed {
		return
	}
	c.closed = true
	// Wake receivers that cannot be satisfied from the buffer.
	for len(c.recvW) > 0 && len(c.buf) == 0 {
		w := c.popRecv()
		if w == nil {
			break
		}
		w.done = true
		w.ok = false
		c.s.At(c.s.now, w.p.unpark)
	}
}

func (c *Chan[T]) popRecv() *waiter[T] {
	for len(c.recvW) > 0 {
		w := c.recvW[0]
		c.recvW = c.recvW[1:]
		if w.done || w.timedOut {
			continue
		}
		return w
	}
	return nil
}

func (c *Chan[T]) popSend() *waiter[T] {
	for len(c.sendW) > 0 {
		w := c.sendW[0]
		c.sendW = c.sendW[1:]
		if w.done || w.timedOut {
			continue
		}
		return w
	}
	return nil
}

// deliver hands v to a waiting receiver if any; reports whether delivered.
// Must run in scheduler context or from the single running process.
func (c *Chan[T]) deliver(v T) bool {
	w := c.popRecv()
	if w == nil {
		return false
	}
	w.val = v
	w.ok = true
	w.done = true
	c.s.At(c.s.now, w.p.unpark)
	return true
}

// TrySend enqueues v without blocking. It reports false if the buffer is
// full and no receiver is waiting. Safe from event context.
func (c *Chan[T]) TrySend(v T) bool {
	if c.closed {
		panic("sim: send on closed Chan")
	}
	if len(c.buf) == 0 && c.deliver(v) {
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Send blocks the calling process until the value is accepted.
func (c *Chan[T]) Send(p *Proc, v T) {
	if c.TrySend(v) {
		return
	}
	w := &waiter[T]{p: p, val: v}
	c.sendW = append(c.sendW, w)
	p.park()
	if !w.done {
		panic("sim: sender resumed without completion")
	}
}

// TryRecv receives without blocking. ok reports whether a value was
// received. Safe from event context.
func (c *Chan[T]) TryRecv() (T, bool) {
	var zero T
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[1:]
		c.admitSender()
		return v, true
	}
	return zero, false
}

// admitSender moves one blocked sender's value into the buffer (or to a
// receiver) after space frees up.
func (c *Chan[T]) admitSender() {
	w := c.popSend()
	if w == nil {
		return
	}
	w.done = true
	if !c.deliver(w.val) {
		c.buf = append(c.buf, w.val)
	}
	c.s.At(c.s.now, w.p.unpark)
}

// Recv blocks the calling process until a value arrives or the channel is
// closed and drained; ok is false in the latter case.
func (c *Chan[T]) Recv(p *Proc) (T, bool) {
	if v, ok := c.TryRecv(); ok {
		return v, true
	}
	if c.closed {
		var zero T
		return zero, false
	}
	w := &waiter[T]{p: p}
	c.recvW = append(c.recvW, w)
	p.park()
	return w.val, w.ok
}

// RecvTimeout is Recv with a deadline d from now. timedOut reports whether
// the deadline elapsed before a value arrived.
func (c *Chan[T]) RecvTimeout(p *Proc, d time.Duration) (v T, ok bool, timedOut bool) {
	if v, ok := c.TryRecv(); ok {
		return v, true, false
	}
	if c.closed {
		var zero T
		return zero, false, false
	}
	if d <= 0 {
		var zero T
		return zero, false, true
	}
	w := &waiter[T]{p: p}
	c.recvW = append(c.recvW, w)
	c.s.After(d, func() {
		if w.done {
			return
		}
		w.timedOut = true
		c.s.At(c.s.now, p.unpark)
	})
	p.park()
	if w.timedOut && w.done {
		// Value arrived in the same instant the timer fired and was
		// delivered first; prefer the value.
		w.timedOut = false
	}
	return w.val, w.ok, w.timedOut
}

// WaitGroup tracks completion of a set of processes or activities in
// virtual time.
type WaitGroup struct {
	s     *Scheduler
	count int
	wait  []*Proc
}

// NewWaitGroup returns a WaitGroup bound to s.
func NewWaitGroup(s *Scheduler) *WaitGroup { return &WaitGroup{s: s} }

// Add increments the counter by n.
func (wg *WaitGroup) Add(n int) { wg.count += n }

// Done decrements the counter; at zero all waiters resume.
func (wg *WaitGroup) Done() {
	wg.count--
	if wg.count < 0 {
		panic("sim: WaitGroup counter below zero")
	}
	if wg.count == 0 {
		for _, p := range wg.wait {
			wg.s.At(wg.s.now, p.unpark)
		}
		wg.wait = nil
	}
}

// Wait blocks the calling process until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.wait = append(wg.wait, p)
	p.park()
}

// Go spawns fn as a process tracked by the WaitGroup.
func (wg *WaitGroup) Go(name string, fn func(p *Proc)) {
	wg.Add(1)
	wg.s.Spawn(name, func(p *Proc) {
		defer wg.Done()
		fn(p)
	})
}
