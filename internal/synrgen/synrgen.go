// Package synrgen is a miniature SynRGen (Ebling & Satyanarayanan, "an
// extensible file reference generator"): it models a user in an edit-debug
// cycle over files stored on a remote NFS server, which is exactly the
// workload the paper runs on the five interfering laptops of the
// Chatterbox scenario.
//
// A user alternates think time with actions drawn from the cycle:
//
//   - edit: read a source file, dwell, write it back slightly changed;
//   - compile: read a handful of sources, write an object file;
//   - debug: read an object/binary straight through.
//
// Every action issues real RPCs through a real nfs.Client, so the traffic
// on the shared medium is genuine NFS: small status checks interleaved
// with 1 KB data blocks, in bursts, with think-time gaps — the bursty
// contention the paper observes in Figure 5.
package synrgen

import (
	"fmt"
	"math/rand"
	"time"

	"tracemod/internal/apps/nfs"
	"tracemod/internal/sim"
)

// Params shapes the user's behaviour.
type Params struct {
	// Files is the size of the user's working set.
	Files int
	// FileSize is the mean source-file size in bytes.
	FileSize int
	// ThinkMean is the mean think time between actions.
	ThinkMean time.Duration
	// RNG drives the user's choices; required.
	RNG *rand.Rand
}

// DefaultParams returns an edit-debug user matching the paper's era: a
// working set of a dozen small sources, a couple of seconds of think time.
func DefaultParams(rng *rand.Rand) Params {
	return Params{Files: 12, FileSize: 3 * 1024, ThinkMean: 2 * time.Second, RNG: rng}
}

// Stats counts a user's activity.
type Stats struct {
	Edits, Compiles, Debugs int
	BytesRead, BytesWritten int
}

// User is one synthetic SynRGen user.
type User struct {
	client *nfs.Client
	params Params

	dir   uint32
	files []uint32
	objs  []uint32

	stats Stats
}

// New prepares a user working in its own directory under the server root;
// Setup must run (from a process) before Run.
func New(client *nfs.Client, params Params) *User {
	if params.RNG == nil {
		panic("synrgen: Params.RNG is required")
	}
	if params.Files <= 0 {
		params.Files = 12
	}
	if params.FileSize <= 0 {
		params.FileSize = 3 * 1024
	}
	if params.ThinkMean <= 0 {
		params.ThinkMean = 2 * time.Second
	}
	return &User{client: client, params: params}
}

// Stats returns the user's activity counters.
func (u *User) Stats() Stats { return u.stats }

// Setup populates the user's working set on the server.
func (u *User) Setup(p *sim.Proc, name string) error {
	dir, err := u.client.Mkdir(p, nfs.RootFH, name)
	if err != nil {
		return fmt.Errorf("synrgen: mkdir: %w", err)
	}
	u.dir = dir.FH
	for i := 0; i < u.params.Files; i++ {
		f, err := u.client.Create(p, u.dir, fmt.Sprintf("src%02d.c", i))
		if err != nil {
			return fmt.Errorf("synrgen: create: %w", err)
		}
		size := u.params.FileSize/2 + u.params.RNG.Intn(u.params.FileSize)
		if err := u.client.WriteFile(p, f.FH, u.fill(size, byte(i))); err != nil {
			return fmt.Errorf("synrgen: populate: %w", err)
		}
		u.stats.BytesWritten += size
		u.files = append(u.files, f.FH)
	}
	return nil
}

func (u *User) fill(size int, seed byte) []byte {
	data := make([]byte, size)
	for i := range data {
		data[i] = 'a' + (seed+byte(i))%26
	}
	return data
}

// Run drives the edit-debug cycle until end (virtual time).
func (u *User) Run(p *sim.Proc, end sim.Time) error {
	for p.Now() < end {
		think := time.Duration(u.params.RNG.ExpFloat64() * float64(u.params.ThinkMean))
		if think > 4*u.params.ThinkMean {
			think = 4 * u.params.ThinkMean
		}
		p.Sleep(think)
		if p.Now() >= end {
			return nil
		}
		var err error
		switch r := u.params.RNG.Float64(); {
		case r < 0.55:
			err = u.edit(p)
		case r < 0.85:
			err = u.compile(p)
		default:
			err = u.debug(p)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// edit reads one source, dwells briefly, and writes it back.
func (u *User) edit(p *sim.Proc) error {
	fh := u.files[u.params.RNG.Intn(len(u.files))]
	u.client.FlushFile(fh) // the editor re-reads from the server
	data, err := u.client.ReadFile(p, fh)
	if err != nil {
		return err
	}
	u.stats.BytesRead += len(data)
	p.Sleep(time.Duration(100+u.params.RNG.Intn(300)) * time.Millisecond)
	// The edit grows or shrinks the file a little.
	delta := u.params.RNG.Intn(256) - 96
	size := len(data) + delta
	if size < 64 {
		size = 64
	}
	if err := u.client.WriteFile(p, fh, u.fill(size, byte(u.stats.Edits))); err != nil {
		return err
	}
	u.stats.BytesWritten += size
	u.stats.Edits++
	return nil
}

// compile reads several sources and writes an object file.
func (u *User) compile(p *sim.Proc) error {
	n := 3 + u.params.RNG.Intn(4)
	total := 0
	for i := 0; i < n; i++ {
		fh := u.files[u.params.RNG.Intn(len(u.files))]
		u.client.FlushFile(fh)
		data, err := u.client.ReadFile(p, fh)
		if err != nil {
			return err
		}
		total += len(data)
		u.stats.BytesRead += len(data)
	}
	p.Sleep(time.Duration(150+u.params.RNG.Intn(450)) * time.Millisecond)
	obj, err := u.client.Create(p, u.dir, fmt.Sprintf("out%02d.o", u.stats.Compiles%8))
	if err != nil {
		return err
	}
	size := total / 2
	if size < 256 {
		size = 256
	}
	if err := u.client.WriteFile(p, obj.FH, u.fill(size, 0x55)); err != nil {
		return err
	}
	u.stats.BytesWritten += size
	if len(u.objs) < 8 {
		u.objs = append(u.objs, obj.FH)
	}
	u.stats.Compiles++
	return nil
}

// debug reads an object straight through (or a source if none exist yet).
func (u *User) debug(p *sim.Proc) error {
	pool := u.objs
	if len(pool) == 0 {
		pool = u.files
	}
	fh := pool[u.params.RNG.Intn(len(pool))]
	u.client.FlushFile(fh)
	data, err := u.client.ReadFile(p, fh)
	if err != nil {
		return err
	}
	u.stats.BytesRead += len(data)
	u.stats.Debugs++
	return nil
}
