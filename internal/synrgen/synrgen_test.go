package synrgen

import (
	"math/rand"
	"testing"
	"time"

	"tracemod/internal/apps/nfs"
	"tracemod/internal/packet"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
	"tracemod/internal/transport"
)

var (
	clientIP = packet.IP4(10, 8, 0, 1)
	serverIP = packet.IP4(10, 8, 0, 2)
	mask     = packet.IP4(255, 255, 255, 0)
)

func setup(t *testing.T, seed int64) (*sim.Scheduler, *nfs.Client, *nfs.Server, *simnet.Medium) {
	t.Helper()
	s := sim.New(seed)
	m := simnet.NewMedium(s, "lan", simnet.Ethernet10())
	cn := simnet.NewNode(s, "user")
	cn.AttachNIC(m, clientIP, mask)
	sn := simnet.NewNode(s, "server")
	sn.AttachNIC(m, serverIP, mask)
	srv, err := nfs.NewServer(s, transport.NewUDP(sn))
	if err != nil {
		t.Fatal(err)
	}
	client, err := nfs.NewClient(s, transport.NewUDP(cn), serverIP)
	if err != nil {
		t.Fatal(err)
	}
	return s, client, srv, m
}

func TestSetupPopulatesWorkingSet(t *testing.T) {
	s, client, srv, _ := setup(t, 1)
	u := New(client, DefaultParams(rand.New(rand.NewSource(2))))
	var err error
	s.Spawn("user", func(p *sim.Proc) { err = u.Setup(p, "alice") })
	s.RunUntil(sim.Time(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	// Root + user dir + 12 files.
	if srv.NodeCount() != 14 {
		t.Fatalf("nodes = %d, want 14", srv.NodeCount())
	}
	if u.Stats().BytesWritten == 0 {
		t.Fatal("setup should write the working set")
	}
}

func TestRunGeneratesTraffic(t *testing.T) {
	s, client, _, m := setup(t, 3)
	u := New(client, Params{Files: 8, FileSize: 4096, ThinkMean: 500 * time.Millisecond, RNG: rand.New(rand.NewSource(4))})
	var err error
	s.Spawn("user", func(p *sim.Proc) {
		if err = u.Setup(p, "bob"); err != nil {
			return
		}
		err = u.Run(p, sim.Time(60*time.Second))
	})
	s.RunUntil(sim.Time(70 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	st := u.Stats()
	if st.Edits+st.Compiles+st.Debugs < 20 {
		t.Fatalf("actions = %+v, want a busy minute", st)
	}
	if st.Edits == 0 || st.Compiles == 0 || st.Debugs == 0 {
		t.Fatalf("all action kinds should occur: %+v", st)
	}
	if st.BytesRead == 0 || st.BytesWritten == 0 {
		t.Fatalf("bytes = %+v", st)
	}
	// And the traffic is real: frames crossed the medium.
	if m.Stats().Frames < 200 {
		t.Fatalf("frames = %d, want substantial RPC traffic", m.Stats().Frames)
	}
}

func TestRunStopsAtEnd(t *testing.T) {
	s, client, _, _ := setup(t, 5)
	u := New(client, DefaultParams(rand.New(rand.NewSource(6))))
	var finished sim.Time
	s.Spawn("user", func(p *sim.Proc) {
		u.Setup(p, "carol")
		u.Run(p, sim.Time(10*time.Second))
		finished = p.Now()
	})
	s.RunUntil(sim.Time(time.Minute))
	// A final action may overshoot slightly, but not by a full cycle.
	if finished < sim.Time(10*time.Second) || finished > sim.Time(25*time.Second) {
		t.Fatalf("finished at %v, want shortly after the 10s deadline", finished.Duration())
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	run := func() Stats {
		s, client, _, _ := setup(t, 7)
		u := New(client, DefaultParams(s.RNG("user")))
		s.Spawn("user", func(p *sim.Proc) {
			u.Setup(p, "dave")
			u.Run(p, sim.Time(30*time.Second))
		})
		s.RunUntil(sim.Time(40 * time.Second))
		return u.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestParamsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing RNG should panic")
		}
	}()
	New(nil, Params{})
}

func TestDefaultsFilledIn(t *testing.T) {
	u := New(nil, Params{RNG: rand.New(rand.NewSource(1))})
	if u.params.Files != 12 || u.params.FileSize != 3*1024 || u.params.ThinkMean != 2*time.Second {
		t.Fatalf("defaults = %+v", u.params)
	}
}
