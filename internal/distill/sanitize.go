// Collected-trace sanitization: the distiller's input arrives from field
// collection, where clock steps, driver bugs, and damaged media produce
// records the solver was never written to survive — timestamps that jump
// backwards or eons forwards, zero-size packets, NaN signal readings.
// SanitizeCollected repairs what is repairable and drops the rest, so the
// solver and the windowing loop only ever see physically plausible input.
//
// The per-record judgment lives in distill/stream as a pair of gates
// (the same gates the streaming distiller runs online); this file keeps
// the whole-trace conveniences built on them.
package distill

import (
	"fmt"
	"time"

	"tracemod/internal/distill/stream"
	"tracemod/internal/tracefmt"
)

// SanitizeOptions bound what the sanitizer tolerates; see the streaming
// package for the field documentation and defaults.
type SanitizeOptions = stream.SanitizeOptions

// CollectedReport accounts for a sanitizing pass over a collected trace.
type CollectedReport = stream.CollectedReport

// SanitizeCollected returns a copy of tr with implausible records
// repaired or removed: zero-size or bad-direction packets dropped,
// non-monotonic timestamps clamped (within ClockSkew) or dropped,
// forward jumps beyond MaxGap dropped, implausible RTTs cleared to the
// sentinel, and device readings with NaN/Inf fields dropped. The input
// is never modified.
func SanitizeCollected(tr *tracefmt.Trace, opts SanitizeOptions) (*tracefmt.Trace, CollectedReport) {
	out := &tracefmt.Trace{
		Header: tr.Header,
		Lost:   append([]tracefmt.LostRecord(nil), tr.Lost...),
	}
	var rep CollectedReport

	pg := stream.NewPacketGate(opts)
	for _, p := range tr.Packets {
		kept, v := pg.Admit(p)
		if !v.Keep {
			rep.PacketsDropped++
			continue
		}
		if v.RTTCleared {
			rep.RTTsCleared++
		}
		if v.Clamped {
			rep.PacketsClamped++
		}
		rep.PacketsKept++
		out.Packets = append(out.Packets, kept)
	}

	dg := stream.NewDeviceGate(opts)
	for _, d := range tr.Devices {
		kept, v := dg.Admit(d)
		if !v.Keep {
			rep.DevicesDropped++
			continue
		}
		if v.Clamped {
			rep.DevicesClamped++
		}
		rep.DevicesKept++
		out.Devices = append(out.Devices, kept)
	}
	return out, rep
}

// maxProblems caps ValidateCollected's output: past a point, more
// examples of the same damage help nobody.
const maxProblems = 20

// ValidateCollected inspects a collected trace without modifying it and
// returns a human-readable description of every problem the sanitizer
// would act on, capped at maxProblems entries. An empty slice means the
// trace is pristine.
func ValidateCollected(tr *tracefmt.Trace, opts SanitizeOptions) []string {
	opts = opts.WithDefaults()
	var problems []string
	add := func(format string, args ...any) bool {
		if len(problems) >= maxProblems {
			return false
		}
		problems = append(problems, fmt.Sprintf(format, args...))
		return len(problems) < maxProblems
	}

	var prev int64
	first := true
	for i, p := range tr.Packets {
		switch {
		case p.Size == 0:
			if !add("packet %d: zero size", i) {
				return problems
			}
			continue
		case p.Dir > 1:
			if !add("packet %d: invalid direction %d", i, p.Dir) {
				return problems
			}
			continue
		}
		at, keep, clamped := stream.Monotonic(p.At, prev, first, opts)
		if !keep {
			if p.At < prev {
				if !add("packet %d: timestamp runs backwards by %v (beyond clock-skew tolerance %v)", i, time.Duration(prev-p.At), opts.ClockSkew) {
					return problems
				}
			} else if !add("packet %d: timestamp jumps forward by %v (beyond max gap %v)", i, time.Duration(p.At-prev), opts.MaxGap) {
				return problems
			}
			continue
		}
		if clamped {
			if !add("packet %d: timestamp runs backwards by %v (within clock-skew tolerance)", i, time.Duration(prev-p.At)) {
				return problems
			}
		}
		if p.RTT < -1 || p.RTT > int64(opts.MaxRTT) {
			if !add("packet %d: implausible rtt %d ns", i, p.RTT) {
				return problems
			}
		}
		prev, first = at, false
	}

	prev, first = 0, true
	for i, d := range tr.Devices {
		if !stream.Finite32(d.Signal) || !stream.Finite32(d.Quality) || !stream.Finite32(d.Silence) {
			if !add("device record %d: non-finite reading", i) {
				return problems
			}
			continue
		}
		at, keep, clamped := stream.Monotonic(d.At, prev, first, opts)
		if !keep {
			if !add("device record %d: non-monotonic timestamp", i) {
				return problems
			}
			continue
		}
		if clamped {
			if !add("device record %d: timestamp runs backwards (within clock-skew tolerance)", i) {
				return problems
			}
		}
		prev, first = at, false
	}
	return problems
}
