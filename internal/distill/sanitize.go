// Collected-trace sanitization: the distiller's input arrives from field
// collection, where clock steps, driver bugs, and damaged media produce
// records the solver was never written to survive — timestamps that jump
// backwards or eons forwards, zero-size packets, NaN signal readings.
// SanitizeCollected repairs what is repairable and drops the rest, so the
// solver and the windowing loop only ever see physically plausible input.
package distill

import (
	"fmt"
	"math"
	"time"

	"tracemod/internal/tracefmt"
)

// SanitizeOptions bound what the sanitizer tolerates.
type SanitizeOptions struct {
	// ClockSkew is how far a timestamp may run backwards and still be
	// treated as clock skew (clamped to its predecessor) rather than
	// corruption (dropped). Default 50ms.
	ClockSkew time.Duration
	// MaxGap is the largest forward jump between consecutive records
	// before the later record is judged corrupt and dropped — without
	// this bound, a single damaged timestamp near 2^62 would make the
	// windowing loop walk half an eternity of empty steps. Default 1h.
	MaxGap time.Duration
	// MaxRTT bounds a believable round-trip time; larger values are
	// cleared to the "no RTT" sentinel. Default 5m.
	MaxRTT time.Duration
}

func (o SanitizeOptions) withDefaults() SanitizeOptions {
	if o.ClockSkew <= 0 {
		o.ClockSkew = 50 * time.Millisecond
	}
	if o.MaxGap <= 0 {
		o.MaxGap = time.Hour
	}
	if o.MaxRTT <= 0 {
		o.MaxRTT = 5 * time.Minute
	}
	return o
}

// CollectedReport accounts for a sanitizing pass over a collected trace.
type CollectedReport struct {
	PacketsKept    int
	PacketsClamped int
	PacketsDropped int
	DevicesKept    int
	DevicesClamped int
	DevicesDropped int
	// RTTsCleared counts packets whose reported round-trip time was
	// implausible and was reset to the -1 sentinel (the packet itself
	// survives; it simply no longer contributes a delay sample).
	RTTsCleared int
}

// Clean reports whether sanitization changed nothing.
func (r CollectedReport) Clean() bool {
	return r.PacketsClamped == 0 && r.PacketsDropped == 0 &&
		r.DevicesClamped == 0 && r.DevicesDropped == 0 && r.RTTsCleared == 0
}

func (r CollectedReport) String() string {
	if r.Clean() {
		return fmt.Sprintf("clean: %d packets, %d device records", r.PacketsKept, r.DevicesKept)
	}
	return fmt.Sprintf("sanitized: %d/%d packets kept (%d clamped, %d rtts cleared), %d/%d device records kept (%d clamped)",
		r.PacketsKept, r.PacketsKept+r.PacketsDropped, r.PacketsClamped, r.RTTsCleared,
		r.DevicesKept, r.DevicesKept+r.DevicesDropped, r.DevicesClamped)
}

func finite32(f float32) bool {
	f64 := float64(f)
	return !math.IsNaN(f64) && !math.IsInf(f64, 0)
}

// monotonic decides what to do with a record timestamped at, given the
// previous kept record's timestamp. It returns the (possibly clamped)
// timestamp, whether the record survives, and whether it was clamped.
func monotonic(at, prev int64, first bool, opts SanitizeOptions) (int64, bool, bool) {
	if first {
		return at, true, false
	}
	if at < prev {
		if prev-at <= int64(opts.ClockSkew) {
			return prev, true, true // clock skew: pin to the predecessor
		}
		return at, false, false // a genuine jump into the past: corrupt
	}
	if at-prev > int64(opts.MaxGap) {
		return at, false, false // a jump past any believable gap: corrupt
	}
	return at, true, false
}

// SanitizeCollected returns a copy of tr with implausible records
// repaired or removed: zero-size or bad-direction packets dropped,
// non-monotonic timestamps clamped (within ClockSkew) or dropped,
// forward jumps beyond MaxGap dropped, implausible RTTs cleared to the
// sentinel, and device readings with NaN/Inf fields dropped. The input
// is never modified.
func SanitizeCollected(tr *tracefmt.Trace, opts SanitizeOptions) (*tracefmt.Trace, CollectedReport) {
	opts = opts.withDefaults()
	out := &tracefmt.Trace{
		Header: tr.Header,
		Lost:   append([]tracefmt.LostRecord(nil), tr.Lost...),
	}
	var rep CollectedReport

	var prev int64
	first := true
	for _, p := range tr.Packets {
		if p.Size == 0 || p.Dir > 1 {
			rep.PacketsDropped++
			continue
		}
		at, keep, clamped := monotonic(p.At, prev, first, opts)
		if !keep {
			rep.PacketsDropped++
			continue
		}
		p.At = at
		if p.RTT < -1 || p.RTT > int64(opts.MaxRTT) {
			p.RTT = -1
			rep.RTTsCleared++
		}
		if clamped {
			rep.PacketsClamped++
		}
		prev, first = p.At, false
		rep.PacketsKept++
		out.Packets = append(out.Packets, p)
	}

	prev, first = 0, true
	for _, d := range tr.Devices {
		if !finite32(d.Signal) || !finite32(d.Quality) || !finite32(d.Silence) {
			rep.DevicesDropped++
			continue
		}
		at, keep, clamped := monotonic(d.At, prev, first, opts)
		if !keep {
			rep.DevicesDropped++
			continue
		}
		d.At = at
		if clamped {
			rep.DevicesClamped++
		}
		prev, first = d.At, false
		rep.DevicesKept++
		out.Devices = append(out.Devices, d)
	}
	return out, rep
}

// maxProblems caps ValidateCollected's output: past a point, more
// examples of the same damage help nobody.
const maxProblems = 20

// ValidateCollected inspects a collected trace without modifying it and
// returns a human-readable description of every problem the sanitizer
// would act on, capped at maxProblems entries. An empty slice means the
// trace is pristine.
func ValidateCollected(tr *tracefmt.Trace, opts SanitizeOptions) []string {
	opts = opts.withDefaults()
	var problems []string
	add := func(format string, args ...any) bool {
		if len(problems) >= maxProblems {
			return false
		}
		problems = append(problems, fmt.Sprintf(format, args...))
		return len(problems) < maxProblems
	}

	var prev int64
	first := true
	for i, p := range tr.Packets {
		switch {
		case p.Size == 0:
			if !add("packet %d: zero size", i) {
				return problems
			}
			continue
		case p.Dir > 1:
			if !add("packet %d: invalid direction %d", i, p.Dir) {
				return problems
			}
			continue
		}
		at, keep, clamped := monotonic(p.At, prev, first, opts)
		if !keep {
			if p.At < prev {
				if !add("packet %d: timestamp runs backwards by %v (beyond clock-skew tolerance %v)", i, time.Duration(prev-p.At), opts.ClockSkew) {
					return problems
				}
			} else if !add("packet %d: timestamp jumps forward by %v (beyond max gap %v)", i, time.Duration(p.At-prev), opts.MaxGap) {
				return problems
			}
			continue
		}
		if clamped {
			if !add("packet %d: timestamp runs backwards by %v (within clock-skew tolerance)", i, time.Duration(prev-p.At)) {
				return problems
			}
		}
		if p.RTT < -1 || p.RTT > int64(opts.MaxRTT) {
			if !add("packet %d: implausible rtt %d ns", i, p.RTT) {
				return problems
			}
		}
		prev, first = at, false
	}

	prev, first = 0, true
	for i, d := range tr.Devices {
		if !finite32(d.Signal) || !finite32(d.Quality) || !finite32(d.Silence) {
			if !add("device record %d: non-finite reading", i) {
				return problems
			}
			continue
		}
		at, keep, clamped := monotonic(d.At, prev, first, opts)
		if !keep {
			if !add("device record %d: non-monotonic timestamp", i) {
				return problems
			}
			continue
		}
		if clamped {
			if !add("device record %d: timestamp runs backwards (within clock-skew tolerance)", i) {
				return problems
			}
		}
		prev, first = at, false
	}
	return problems
}
