// Package distill implements the distillation phase (Section 3.2): it
// transforms a collected trace into a replay trace — a list of
// network-quality tuples ⟨d, F, Vb, Vr, L⟩ — by solving the model
// equations for each observed ping triplet, applying the paper's
// non-cascading correction when a solution goes negative, smoothing
// estimates with a sliding window, and estimating loss from the sequence
// numbers of ECHOREPLY packets around each window.
package distill

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/obs"
	"tracemod/internal/packet"
	"tracemod/internal/replay"
	"tracemod/internal/tracefmt"
)

// Config controls the sliding-window conversion of instantaneous estimates
// into replay-trace tuples.
type Config struct {
	// Window is the averaging width; the paper chooses five seconds to
	// balance discounting outliers against reactivity.
	Window time.Duration
	// Step is the tuple emission period (and each tuple's duration).
	Step time.Duration
	// Obs, if non-nil, accumulates distillation telemetry on the registry
	// (names under tracemod_distill_*). Repeated Distill calls sharing a
	// registry accumulate into the same counters.
	Obs *obs.Registry
	// Sanitize bounds the input sanitizer; the zero value uses the
	// defaults documented on SanitizeOptions.
	Sanitize SanitizeOptions
	// Strict refuses imperfect input: instead of sanitizing, Distill
	// returns ErrDirtyTrace naming the first problems found.
	Strict bool
}

// DefaultConfig returns the paper's parameters: a five-second window
// stepped every second.
func DefaultConfig() Config {
	return Config{Window: 5 * time.Second, Step: time.Second}
}

// Estimate is one instantaneous parameter estimate derived from a triplet.
type Estimate struct {
	// At is the triplet's position in the trace (stage-1 send time).
	At time.Duration
	// Params are the solved (or corrected) delay parameters.
	Params core.DelayParams
	// Corrected reports whether the paper's negative-value fallback was
	// applied instead of a raw solution.
	Corrected bool
}

// Result carries the replay trace plus diagnostics used by the figure
// harness and tests.
type Result struct {
	Replay    core.Trace
	Estimates []Estimate

	// TripletsTotal counts probe groups found in the trace;
	// TripletsComplete counts those with all three round-trips observed;
	// Corrections counts negative-solution fallbacks.
	TripletsTotal    int
	TripletsComplete int
	Corrections      int

	// EchoesSent and RepliesSeen are the workload totals used for loss
	// accounting.
	EchoesSent  int
	RepliesSeen int

	// Collected reports what input sanitization repaired or removed;
	// Tuples reports the output-tuple sanitization pass. Both are clean
	// on pristine input.
	Collected CollectedReport
	Tuples    replay.SanitizeReport
}

// Errors returned by Distill.
var (
	ErrNoWorkload  = errors.New("distill: trace contains no ping-workload triplets")
	ErrNoEstimates = errors.New("distill: no usable delay estimates in trace")
	ErrDirtyTrace  = errors.New("distill: trace fails validation")
)

// echoOut is one outbound ECHO observation.
type echoOut struct {
	at   time.Duration
	seq  uint16
	size int
	rtt  time.Duration // filled when its reply is seen; 0 = lost
}

// Distill converts a collected trace into a replay trace.
func Distill(tr *tracefmt.Trace, cfg Config) (*Result, error) {
	if cfg.Window <= 0 {
		cfg.Window = 5 * time.Second
	}
	if cfg.Step <= 0 {
		cfg.Step = time.Second
	}

	clean, crep := SanitizeCollected(tr, cfg.Sanitize)
	if cfg.Strict && !crep.Clean() {
		problems := ValidateCollected(tr, cfg.Sanitize)
		return nil, fmt.Errorf("%w: %s", ErrDirtyTrace, strings.Join(problems, "; "))
	}
	tr = clean

	outs, bySeq := extractEchoes(tr)
	if len(outs) == 0 {
		return nil, ErrNoWorkload
	}
	matchReplies(tr, bySeq)

	res := &Result{Collected: crep}
	res.EchoesSent = len(outs)
	for _, o := range outs {
		if o.rtt > 0 {
			res.RepliesSeen++
		}
	}

	sSmall, sLarge := probeSizes(outs)
	res.solveTriplets(outs, sSmall, sLarge)
	if len(res.Estimates) == 0 {
		return nil, ErrNoEstimates
	}

	res.window(outs, tr, cfg)

	// Belt and braces on the way out: whatever the solver and the window
	// produced, the replay trace handed to modulation must be physically
	// meaningful.
	sane, srep, err := replay.Sanitize(res.Replay)
	if err != nil {
		return nil, ErrNoEstimates
	}
	res.Replay = sane
	res.Tuples = srep

	res.report(cfg.Obs)
	return res, nil
}

// report publishes the run's telemetry: how many tuples were emitted, how
// many probe triplets were seen and solved, and — the audit trail for the
// paper's non-cascading negative-solution fix — how many estimates were
// corrections rather than raw solutions. reg may be nil.
func (res *Result) report(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("tracemod_distill_runs_total", "Distillation runs completed.").Inc()
	reg.Counter("tracemod_distill_tuples_emitted_total", "Replay tuples emitted.").Add(int64(len(res.Replay)))
	reg.Counter("tracemod_distill_estimates_total", "Instantaneous parameter estimates produced.").Add(int64(len(res.Estimates)))
	reg.Counter("tracemod_distill_corrections_total", "Negative-solution corrections applied (non-cascading fallback).").Add(int64(res.Corrections))
	reg.Counter("tracemod_distill_triplets_total", "Probe triplets found in collected traces.").Add(int64(res.TripletsTotal))
	reg.Counter("tracemod_distill_triplets_complete_total", "Probe triplets with all three round trips observed.").Add(int64(res.TripletsComplete))
	reg.Counter("tracemod_distill_echoes_sent_total", "Workload echoes counted for loss accounting.").Add(int64(res.EchoesSent))
	reg.Counter("tracemod_distill_replies_seen_total", "Workload echo replies counted for loss accounting.").Add(int64(res.RepliesSeen))
	reg.Counter("tracemod_distill_input_dropped_total", "Collected records removed by input sanitization.").Add(int64(res.Collected.PacketsDropped + res.Collected.DevicesDropped))
	reg.Counter("tracemod_distill_input_clamped_total", "Collected records repaired by input sanitization.").Add(int64(res.Collected.PacketsClamped + res.Collected.DevicesClamped))
	reg.Counter("tracemod_distill_rtts_cleared_total", "Implausible round-trip times reset to the sentinel.").Add(int64(res.Collected.RTTsCleared))
}

// extractEchoes pulls outbound ECHO records, indexed by sequence number.
func extractEchoes(tr *tracefmt.Trace) ([]*echoOut, map[uint16]*echoOut) {
	var outs []*echoOut
	bySeq := map[uint16]*echoOut{}
	start := traceStart(tr)
	for _, p := range tr.Packets {
		if p.Dir == tracefmt.DirOut && p.Protocol == packet.ProtoICMP && p.ICMPType == packet.ICMPEcho {
			o := &echoOut{at: time.Duration(p.At - start), seq: p.Seq, size: int(p.Size)}
			outs = append(outs, o)
			bySeq[p.Seq] = o
		}
	}
	return outs, bySeq
}

// matchReplies attaches round-trip times from inbound ECHOREPLY records.
func matchReplies(tr *tracefmt.Trace, bySeq map[uint16]*echoOut) {
	for _, p := range tr.Packets {
		if p.Dir == tracefmt.DirIn && p.Protocol == packet.ProtoICMP && p.ICMPType == packet.ICMPEchoReply && p.RTT > 0 {
			if o, ok := bySeq[p.Seq]; ok {
				o.rtt = time.Duration(p.RTT)
			}
		}
	}
}

func traceStart(tr *tracefmt.Trace) int64 {
	if len(tr.Packets) > 0 {
		return tr.Packets[0].At
	}
	return tr.Header.Start
}

// probeSizes identifies the workload's two packet sizes: the smallest
// distinct outbound echo size is s1, the largest s2.
func probeSizes(outs []*echoOut) (int, int) {
	small, large := outs[0].size, outs[0].size
	for _, o := range outs {
		if o.size < small {
			small = o.size
		}
		if o.size > large {
			large = o.size
		}
	}
	return small, large
}

// solveTriplets walks outbound echoes, identifies small/large/large probe
// groups with consecutive sequence numbers, and solves (or corrects) each
// complete group into an Estimate. Corrections always base on the last
// *raw* solution so a bad patch never cascades.
func (res *Result) solveTriplets(outs []*echoOut, sSmall, sLarge int) {
	var lastRaw *core.DelayParams
	for i := 0; i+2 < len(outs); i++ {
		a, b, c := outs[i], outs[i+1], outs[i+2]
		if a.size != sSmall || b.size != sLarge || c.size != sLarge {
			continue
		}
		if b.seq != a.seq+1 || c.seq != b.seq+1 {
			continue
		}
		res.TripletsTotal++
		if a.rtt <= 0 || b.rtt <= 0 || c.rtt <= 0 {
			continue // a lost reply: contributes to loss, not to delay
		}
		res.TripletsComplete++
		obs := core.TripletObs{T1: a.rtt, T2: b.rtt, T3: c.rtt, S1: sSmall, S2: sLarge}
		params, err := core.SolveTriplet(obs)
		switch {
		case err == nil:
			p := params
			lastRaw = &p
			res.Estimates = append(res.Estimates, Estimate{At: a.at, Params: params})
		case errors.Is(err, core.ErrNegativeParams) && lastRaw != nil:
			corrected := core.CorrectTriplet(*lastRaw, obs)
			res.Corrections++
			res.Estimates = append(res.Estimates, Estimate{At: a.at, Params: corrected, Corrected: true})
		default:
			// Unsolvable with no prior context: drop the group.
		}
	}
}

// window reduces estimates to one tuple per step using a centered window,
// pairing each with a loss estimate from the sequence numbers of echoes
// sent in (and replies received for) the same window.
func (res *Result) window(outs []*echoOut, tr *tracefmt.Trace, cfg Config) {
	span := time.Duration(0)
	if len(outs) > 0 {
		span = outs[len(outs)-1].at
	}
	if d := tr.Duration(); d > span {
		span = d
	}
	half := cfg.Window / 2

	var last core.DelayParams
	haveLast := false
	for t := time.Duration(0); t <= span; t += cfg.Step {
		lo, hi := t-half, t+half
		var fSum, vbSum, vrSum float64
		n := 0
		for _, e := range res.Estimates {
			if e.At >= lo && e.At < hi {
				fSum += float64(e.Params.F)
				vbSum += float64(e.Params.Vb)
				vrSum += float64(e.Params.Vr)
				n++
			}
		}
		var params core.DelayParams
		switch {
		case n > 0:
			params = core.DelayParams{
				F:  time.Duration(fSum / float64(n)),
				Vb: core.PerByte(vbSum / float64(n)),
				Vr: core.PerByte(vrSum / float64(n)),
			}
			last = params
			haveLast = true
		case haveLast:
			params = last // quiet window: hold previous conditions
		default:
			params = res.Estimates[0].Params // leading gap: use first estimate
		}

		// Loss over this window: echoes sent within it vs. how many of
		// those were answered (sequence-number bookkeeping, Eqs. 9-10).
		sent, answered := 0, 0
		for _, o := range outs {
			if o.at >= lo && o.at < hi {
				sent++
				if o.rtt > 0 {
					answered++
				}
			}
		}
		loss := core.EstimateLoss(sent, answered)
		res.Replay = append(res.Replay, core.Tuple{D: cfg.Step, DelayParams: params, L: loss})
	}
}

// Describe summarizes the result for logs and tools.
func (res *Result) Describe() string {
	return fmt.Sprintf("%d tuples from %d/%d complete triplets (%d corrected), %d/%d echoes answered",
		len(res.Replay), res.TripletsComplete, res.TripletsTotal, res.Corrections, res.RepliesSeen, res.EchoesSent)
}
