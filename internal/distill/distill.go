// Package distill implements the distillation phase (Section 3.2): it
// transforms a collected trace into a replay trace — a list of
// network-quality tuples ⟨d, F, Vb, Vr, L⟩ — by solving the model
// equations for each observed ping triplet, applying the paper's
// non-cascading correction when a solution goes negative, smoothing
// estimates with a sliding window, and estimating loss from the sequence
// numbers of ECHOREPLY packets around each window.
//
// The solver itself lives in distill/stream as an incremental,
// record-at-a-time state machine; Distill is a thin wrapper that feeds
// the whole trace through that streaming core and closes it. Batch and
// streaming output are therefore identical by construction — there is
// only one code path — which is the regression gate the streaming
// pipeline is held to.
package distill

import (
	"fmt"
	"strings"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/distill/stream"
	"tracemod/internal/obs"
	"tracemod/internal/replay"
	"tracemod/internal/tracefmt"
)

// Config controls the sliding-window conversion of instantaneous estimates
// into replay-trace tuples.
type Config struct {
	// Window is the averaging width; the paper chooses five seconds to
	// balance discounting outliers against reactivity.
	Window time.Duration
	// Step is the tuple emission period (and each tuple's duration).
	Step time.Duration
	// Obs, if non-nil, accumulates distillation telemetry on the registry
	// (names under tracemod_distill_*). Repeated Distill calls sharing a
	// registry accumulate into the same counters.
	Obs *obs.Registry
	// Sanitize bounds the input sanitizer; the zero value uses the
	// defaults documented on SanitizeOptions.
	Sanitize SanitizeOptions
	// Strict refuses imperfect input: instead of sanitizing, Distill
	// returns ErrDirtyTrace naming the first problems found.
	Strict bool
}

// DefaultConfig returns the paper's parameters: a five-second window
// stepped every second.
func DefaultConfig() Config {
	return Config{Window: 5 * time.Second, Step: time.Second}
}

// Estimate is one instantaneous parameter estimate derived from a triplet.
type Estimate = stream.Estimate

// Result carries the replay trace plus diagnostics used by the figure
// harness and tests.
type Result struct {
	Replay    core.Trace
	Estimates []Estimate

	// TripletsTotal counts probe groups found in the trace;
	// TripletsComplete counts those with all three round-trips observed;
	// Corrections counts negative-solution fallbacks.
	TripletsTotal    int
	TripletsComplete int
	Corrections      int

	// EchoesSent and RepliesSeen are the workload totals used for loss
	// accounting.
	EchoesSent  int
	RepliesSeen int

	// Collected reports what input sanitization repaired or removed;
	// Tuples reports the output-tuple sanitization pass. Both are clean
	// on pristine input.
	Collected CollectedReport
	Tuples    replay.SanitizeReport
}

// Errors returned by Distill. They are the streaming core's errors, so
// errors.Is works across both APIs.
var (
	ErrNoWorkload  = stream.ErrNoWorkload
	ErrNoEstimates = stream.ErrNoEstimates
	ErrDirtyTrace  = stream.ErrDirtyTrace
)

// Distill converts a collected trace into a replay trace by running it
// through the streaming core in one sitting.
func Distill(tr *tracefmt.Trace, cfg Config) (*Result, error) {
	if cfg.Window <= 0 {
		cfg.Window = 5 * time.Second
	}
	if cfg.Step <= 0 {
		cfg.Step = time.Second
	}

	if cfg.Strict {
		if problems := ValidateCollected(tr, cfg.Sanitize); len(problems) > 0 {
			return nil, fmt.Errorf("%w: %s", ErrDirtyTrace, strings.Join(problems, "; "))
		}
	}

	d := stream.New(stream.Config{
		Window:        cfg.Window,
		Step:          cfg.Step,
		Sanitize:      cfg.Sanitize,
		KeepEstimates: true,
	})
	for _, p := range tr.Packets {
		if err := d.Packet(p); err != nil {
			return nil, err
		}
	}
	for _, dev := range tr.Devices {
		if err := d.Device(dev); err != nil {
			return nil, err
		}
	}
	sum, err := d.Close()
	if err != nil {
		return nil, err
	}

	res := &Result{
		Replay:           sum.Replay,
		Estimates:        sum.Estimates,
		TripletsTotal:    sum.TripletsTotal,
		TripletsComplete: sum.TripletsComplete,
		Corrections:      sum.Corrections,
		EchoesSent:       sum.EchoesSent,
		RepliesSeen:      sum.RepliesSeen,
		Collected:        sum.Collected,
		Tuples:           sum.Tuples,
	}
	res.report(cfg.Obs)
	return res, nil
}

// report publishes the run's telemetry: how many tuples were emitted, how
// many probe triplets were seen and solved, and — the audit trail for the
// paper's non-cascading negative-solution fix — how many estimates were
// corrections rather than raw solutions. reg may be nil.
func (res *Result) report(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("tracemod_distill_runs_total", "Distillation runs completed.").Inc()
	reg.Counter("tracemod_distill_tuples_emitted_total", "Replay tuples emitted.").Add(int64(len(res.Replay)))
	reg.Counter("tracemod_distill_estimates_total", "Instantaneous parameter estimates produced.").Add(int64(len(res.Estimates)))
	reg.Counter("tracemod_distill_corrections_total", "Negative-solution corrections applied (non-cascading fallback).").Add(int64(res.Corrections))
	reg.Counter("tracemod_distill_triplets_total", "Probe triplets found in collected traces.").Add(int64(res.TripletsTotal))
	reg.Counter("tracemod_distill_triplets_complete_total", "Probe triplets with all three round trips observed.").Add(int64(res.TripletsComplete))
	reg.Counter("tracemod_distill_echoes_sent_total", "Workload echoes counted for loss accounting.").Add(int64(res.EchoesSent))
	reg.Counter("tracemod_distill_replies_seen_total", "Workload echo replies counted for loss accounting.").Add(int64(res.RepliesSeen))
	reg.Counter("tracemod_distill_input_dropped_total", "Collected records removed by input sanitization.").Add(int64(res.Collected.PacketsDropped + res.Collected.DevicesDropped))
	reg.Counter("tracemod_distill_input_clamped_total", "Collected records repaired by input sanitization.").Add(int64(res.Collected.PacketsClamped + res.Collected.DevicesClamped))
	reg.Counter("tracemod_distill_rtts_cleared_total", "Implausible round-trip times reset to the sentinel.").Add(int64(res.Collected.RTTsCleared))
}

// Describe summarizes the result for logs and tools.
func (res *Result) Describe() string {
	return fmt.Sprintf("%d tuples from %d/%d complete triplets (%d corrected), %d/%d echoes answered",
		len(res.Replay), res.TripletsComplete, res.TripletsTotal, res.Corrections, res.RepliesSeen, res.EchoesSent)
}
