package stream_test

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/distill"
	"tracemod/internal/distill/stream"
	"tracemod/internal/obs"
	"tracemod/internal/packet"
	"tracemod/internal/replay"
	"tracemod/internal/tracefmt"
)

const (
	s1 = 60   // small probe wire size
	s2 = 1028 // large probe wire size
)

// synthTrace builds a collected trace as the pinger+tracer would produce
// over a channel with time-varying parameters (the distill package's
// test fixture, reproduced here for the identity gate).
func synthTrace(seconds int, paramsAt func(sec int) core.DelayParams, lost func(seq uint16) bool) *tracefmt.Trace {
	tr := &tracefmt.Trace{Header: tracefmt.Header{Device: "wavelan0"}}
	seq := uint16(0)
	for sec := 0; sec < seconds; sec++ {
		p := paramsAt(sec)
		base := int64(sec) * int64(time.Second)
		emit := func(size int, rtt time.Duration) {
			seq++
			tr.Packets = append(tr.Packets, tracefmt.PacketRecord{
				At: base, Dir: tracefmt.DirOut, Size: uint16(size),
				Protocol: packet.ProtoICMP, ICMPType: packet.ICMPEcho, ID: 1, Seq: seq, RTT: -1,
			})
			if !lost(seq) {
				tr.Packets = append(tr.Packets, tracefmt.PacketRecord{
					At: base + int64(rtt), Dir: tracefmt.DirIn, Size: uint16(size),
					Protocol: packet.ProtoICMP, ICMPType: packet.ICMPEchoReply, ID: 1, Seq: seq, RTT: int64(rtt),
				})
			}
		}
		t1 := p.RoundTrip(s1)
		t2 := p.RoundTrip(s2)
		t3 := t2 + p.Vb.Cost(s2)
		emit(s1, t1)
		emit(s2, t2)
		emit(s2, t3)
	}
	sort.SliceStable(tr.Packets, func(i, j int) bool { return tr.Packets[i].At < tr.Packets[j].At })
	return tr
}

func constParams(int) core.DelayParams {
	return core.DelayParams{F: 2 * time.Millisecond, Vb: 5000, Vr: 800}
}

func serialize(t testing.TB, tr *tracefmt.Trace, crc bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tracefmt.WriteAllOptions(&buf, tr, tracefmt.WriterOptions{CRC: crc}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func replayBytes(t testing.TB, tr core.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := replay.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runPipeline pushes raw trace bytes through the full streaming path —
// salvaging StreamReader into a Distiller — in fixed-size chunks, and
// returns the accumulated replay trace.
func runPipeline(t testing.TB, data []byte, chunk int, cfg stream.Config) (core.Trace, *stream.Summary, error) {
	t.Helper()
	var live core.Trace
	cfg.OnTuple = func(tu core.Tuple) { live = append(live, tu) }
	d := stream.New(cfg)
	r := tracefmt.NewStreamReader(tracefmt.StreamOptions{Salvage: true})
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if err := r.Feed(data[off:end]); err != nil {
			t.Fatal(err)
		}
		recs, err := r.ReadAvailable()
		if err != nil {
			return nil, nil, err
		}
		for _, rec := range recs {
			if err := d.Ingest(rec); err != nil {
				return nil, nil, err
			}
		}
	}
	recs, _, err := r.Finish()
	if err != nil {
		return nil, nil, err
	}
	for _, rec := range recs {
		if err := d.Ingest(rec); err != nil {
			return nil, nil, err
		}
	}
	sum, err := d.Close()
	if err != nil {
		return nil, nil, err
	}
	return live, sum, nil
}

var identityChunks = []int{1, 2, 3, 5, 17, 64, 997, 1 << 20}

// assertIdentity is the PR's regression gate: the batch distiller and
// the streaming pipeline must produce byte-identical replay traces (or
// the same failure) from the same raw bytes, at every chunk size.
func assertIdentity(t *testing.T, name string, data []byte) {
	t.Helper()
	tr, _, err := tracefmt.SalvageAll(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("%s: unreadable fixture: %v", name, err)
	}
	batch, batchErr := distill.Distill(tr, distill.DefaultConfig())
	var want []byte
	if batchErr == nil {
		want = replayBytes(t, batch.Replay)
	}
	for _, chunk := range identityChunks {
		live, sum, err := runPipeline(t, data, chunk, stream.Config{})
		if (err != nil) != (batchErr != nil) {
			t.Fatalf("%s chunk=%d: stream err=%v, batch err=%v", name, chunk, err, batchErr)
		}
		if batchErr != nil {
			if !errors.Is(err, batchErr) {
				t.Fatalf("%s chunk=%d: stream err=%v, batch err=%v", name, chunk, err, batchErr)
			}
			continue
		}
		if got := replayBytes(t, sum.Replay); !bytes.Equal(got, want) {
			t.Fatalf("%s chunk=%d: accumulated replay diverges from batch:\n got %d bytes\nwant %d bytes", name, chunk, len(got), len(want))
		}
		if got := replayBytes(t, live); !bytes.Equal(got, want) {
			t.Fatalf("%s chunk=%d: OnTuple sequence diverges from batch", name, chunk)
		}
		if sum.TripletsTotal != batch.TripletsTotal || sum.TripletsComplete != batch.TripletsComplete ||
			sum.Corrections != batch.Corrections || sum.EchoesSent != batch.EchoesSent ||
			sum.RepliesSeen != batch.RepliesSeen || sum.Collected != batch.Collected || sum.Tuples != batch.Tuples {
			t.Fatalf("%s chunk=%d: diagnostics diverge:\nstream %+v\nbatch  %+v", name, chunk, sum, batch)
		}
	}
}

func TestBatchStreamingIdentityOnFixtures(t *testing.T) {
	for _, name := range []string{"bitflip.trace", "truncated.trace", "unknown_flood.trace"} {
		data, err := os.ReadFile(filepath.Join("..", "..", "tracefmt", "testdata", name))
		if err != nil {
			t.Fatalf("fixture %s missing: %v", name, err)
		}
		assertIdentity(t, name, data)
	}
}

func TestBatchStreamingIdentityOnSynthetic(t *testing.T) {
	clean := synthTrace(45, constParams, func(uint16) bool { return false })
	assertIdentity(t, "clean", serialize(t, clean, false))
	assertIdentity(t, "clean+crc", serialize(t, clean, true))

	lossy := synthTrace(45, func(sec int) core.DelayParams {
		p := constParams(sec)
		p.F += time.Duration(sec%7) * 100 * time.Microsecond
		return p
	}, func(seq uint16) bool { return seq%11 == 0 })
	assertIdentity(t, "lossy", serialize(t, lossy, false))
}

// A trace with every class of sanitizer-visible damage: the gates must
// judge the stream record-at-a-time exactly as the batch pass judges
// the whole file.
func TestBatchStreamingIdentityOnDirtyTrace(t *testing.T) {
	tr := synthTrace(40, constParams, func(uint16) bool { return false })
	// Clock skew within tolerance on one record.
	tr.Packets[30].At -= int64(10 * time.Millisecond)
	// A genuine jump into the past.
	tr.Packets[50].At -= int64(20 * time.Second)
	// A zero-size packet.
	tr.Packets[60].Size = 0
	// An implausible round-trip time.
	tr.Packets[70].RTT = int64(20 * time.Minute)
	// A forward jump past MaxGap would truncate the useful span; use a
	// non-finite device reading instead.
	tr.Devices = append(tr.Devices, tracefmt.DeviceRecord{At: 0, Signal: 1},
		tracefmt.DeviceRecord{At: int64(time.Second), Signal: float32(math.NaN())})
	assertIdentity(t, "dirty", serialize(t, tr, false))
}

// The live-path promise: tuples freeze while the stream is still
// arriving, with lag bounded by Window/2 + Settle + Step.
func TestIncrementalEmissionWithBoundedLag(t *testing.T) {
	tr := synthTrace(60, constParams, func(uint16) bool { return false })
	cfg := stream.Config{}
	emitted := 0
	firstAt := -1
	cfg.OnTuple = func(core.Tuple) { emitted++ }
	d := stream.New(cfg)
	bound := 5*time.Second/2 + 5*time.Second + time.Second // half + settle + step
	for i, p := range tr.Packets {
		if err := d.Packet(p); err != nil {
			t.Fatal(err)
		}
		if emitted > 0 {
			if firstAt < 0 {
				firstAt = i
			}
			if lag := d.Lag(); lag > bound {
				t.Fatalf("record %d: lag %v exceeds bound %v", i, lag, bound)
			}
		}
	}
	if firstAt < 0 {
		t.Fatal("no tuple froze during the feed")
	}
	if firstAt > len(tr.Packets)/4 {
		t.Fatalf("first tuple froze only at record %d of %d; live emission is too lazy", firstAt, len(tr.Packets))
	}
	sum, err := d.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Replay) != emitted {
		t.Fatalf("summary has %d tuples, OnTuple saw %d", len(sum.Replay), emitted)
	}
}

func TestStrictStreamRefusesDirtyRecord(t *testing.T) {
	tr := synthTrace(10, constParams, func(uint16) bool { return false })
	// The three probe sends of one group share a timestamp; pulling the
	// middle one back 10ms runs it behind its predecessor, within the
	// clock-skew tolerance: clamped, hence dirty.
	tr.Packets[13].At = tr.Packets[12].At - int64(10*time.Millisecond)
	d := stream.New(stream.Config{Strict: true})
	var firstErr error
	for _, p := range tr.Packets {
		if err := d.Packet(p); err != nil {
			firstErr = err
			break
		}
	}
	if !errors.Is(firstErr, stream.ErrDirtyTrace) {
		t.Fatalf("err=%v, want ErrDirtyTrace", firstErr)
	}
	// The error is sticky, including through Close.
	if err := d.Packet(tr.Packets[0]); !errors.Is(err, stream.ErrDirtyTrace) {
		t.Fatalf("post-trip Packet err=%v", err)
	}
	if _, err := d.Close(); !errors.Is(err, stream.ErrDirtyTrace) {
		t.Fatalf("Close err=%v", err)
	}
}

func TestStreamMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	tr := synthTrace(30, constParams, func(uint16) bool { return false })
	d := stream.New(stream.Config{Metrics: reg})
	for _, p := range tr.Packets {
		if err := d.Packet(p); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := d.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("tracemod_stream_records_total", "").Load(); got != int64(len(tr.Packets)) {
		t.Fatalf("records_total=%d, want %d", got, len(tr.Packets))
	}
	if got := reg.Counter("tracemod_stream_windows_emitted_total", "").Load(); got != int64(len(sum.Replay)) {
		t.Fatalf("windows_emitted_total=%d, want %d", got, len(sum.Replay))
	}
	h := reg.Histogram("tracemod_stream_distill_lag", "", stream.LagBounds())
	if h.Count() != int64(len(sum.Replay)) {
		t.Fatalf("lag histogram has %d observations, want %d", h.Count(), len(sum.Replay))
	}
	// While live, every frozen window had settled: lag at emission is at
	// least Window/2 + Settle, except for the Close-time flush.
	if q := h.Quantile(0.5); q < 5*time.Second/2 {
		t.Fatalf("median lag %v implausibly small", q)
	}
}

func TestCloseErrors(t *testing.T) {
	d := stream.New(stream.Config{})
	if _, err := d.Close(); !errors.Is(err, stream.ErrNoWorkload) {
		t.Fatalf("empty close err=%v, want ErrNoWorkload", err)
	}
	if _, err := d.Close(); !errors.Is(err, stream.ErrClosed) {
		t.Fatalf("double close err=%v, want ErrClosed", err)
	}
	if err := d.Packet(tracefmt.PacketRecord{Size: 60}); !errors.Is(err, stream.ErrClosed) {
		t.Fatalf("post-close Packet err=%v, want ErrClosed", err)
	}
}
