package stream_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/distill"
	"tracemod/internal/distill/stream"
	"tracemod/internal/replay"
	"tracemod/internal/tracefmt"
)

// FuzzStreamDistill holds the streaming distiller to the PR's central
// contract on arbitrary input: raw bytes pushed through the salvaging
// StreamReader into a Distiller — in whatever chunking the seed picks —
// must yield exactly the replay trace (byte-identical serialization)
// and the same diagnostics as salvage-parsing the bytes whole and
// running the batch distiller, or fail with the same error.
func FuzzStreamDistill(f *testing.F) {
	clean := synthTrace(12, constParams, func(uint16) bool { return false })
	var buf bytes.Buffer
	if err := tracefmt.WriteAll(&buf, clean); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes(), uint8(1))
	f.Add(buf.Bytes()[:buf.Len()*2/3], uint8(9))
	var crc bytes.Buffer
	if err := tracefmt.WriteAllOptions(&crc, clean, tracefmt.WriterOptions{CRC: true}); err != nil {
		f.Fatal(err)
	}
	f.Add(crc.Bytes(), uint8(4))
	for _, name := range []string{"bitflip.trace", "truncated.trace", "unknown_flood.trace"} {
		if data, err := os.ReadFile(filepath.Join("..", "..", "tracefmt", "testdata", name)); err == nil {
			f.Add(data, uint8(3))
		}
	}

	f.Fuzz(func(t *testing.T, data []byte, chunkSeed uint8) {
		if len(data) > 64<<10 {
			t.Skip("bounding fuzz input size")
		}
		// Tight gap bound, as in FuzzDistill: 64KB of records can spell
		// out thousands of near-MaxGap jumps, and the windowing loop
		// walks the whole span in 1s steps.
		san := stream.SanitizeOptions{MaxGap: 10 * time.Second}

		tr, _, salvageErr := tracefmt.SalvageAll(bytes.NewReader(data))
		var batch *distill.Result
		var batchErr error
		if salvageErr == nil {
			cfg := distill.DefaultConfig()
			cfg.Sanitize = san
			batch, batchErr = distill.Distill(tr, cfg)
		}

		var live core.Trace
		d := stream.New(stream.Config{
			Sanitize: san,
			OnTuple:  func(tu core.Tuple) { live = append(live, tu) },
		})
		r := tracefmt.NewStreamReader(tracefmt.StreamOptions{Salvage: true})
		chunk := int(chunkSeed%32) + 1
		feed := func(recs []any) {
			for _, rec := range recs {
				if err := d.Ingest(rec); err != nil {
					t.Fatalf("Ingest: %v", err)
				}
			}
		}
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			if err := r.Feed(data[off:end]); err != nil {
				t.Fatalf("Feed: %v", err)
			}
			recs, err := r.ReadAvailable()
			if err != nil {
				if salvageErr == nil {
					t.Fatalf("stream read failed (%v) where batch salvage succeeded", err)
				}
				return
			}
			feed(recs)
		}
		recs, _, err := r.Finish()
		if (err != nil) != (salvageErr != nil) {
			t.Fatalf("stream finish err=%v, salvage err=%v", err, salvageErr)
		}
		if salvageErr != nil {
			return
		}
		feed(recs)
		sum, err := d.Close()
		if (err != nil) != (batchErr != nil) {
			t.Fatalf("stream close err=%v, batch err=%v", err, batchErr)
		}
		if batchErr != nil {
			if !errors.Is(err, batchErr) {
				t.Fatalf("stream err=%v, batch err=%v", err, batchErr)
			}
			return
		}
		var wantBuf, gotBuf, liveBuf bytes.Buffer
		if err := replay.Write(&wantBuf, batch.Replay); err != nil {
			t.Fatal(err)
		}
		if err := replay.Write(&gotBuf, sum.Replay); err != nil {
			t.Fatal(err)
		}
		if err := replay.Write(&liveBuf, live); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) || !bytes.Equal(liveBuf.Bytes(), wantBuf.Bytes()) {
			t.Fatalf("replay bytes diverge at chunk=%d", chunk)
		}
		if sum.Collected != batch.Collected || sum.Tuples != batch.Tuples ||
			sum.TripletsTotal != batch.TripletsTotal || sum.Corrections != batch.Corrections {
			t.Fatalf("diagnostics diverge:\nstream %+v\nbatch  %+v", sum, batch)
		}
		if err := sum.Replay.Validate(); err != nil {
			t.Fatalf("streamed replay trace invalid: %v", err)
		}
	})
}
