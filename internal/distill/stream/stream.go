// Package stream is the incremental heart of the distillation phase: a
// windowed solver that consumes collected-trace records one at a time —
// as a live collector produces them — and emits replay tuples with
// bounded lag behind the newest record it has seen.
//
// The batch distiller (package distill) is a thin wrapper over this
// core: it feeds the whole trace through the same per-record path and
// closes. Every decision the Distiller makes — sanitizer gates, echo
// extraction, reply matching, triplet solving, window averaging, tuple
// sanitation — is a deterministic function of the record sequence
// alone, never of how that sequence was chunked in transit. Feeding a
// trace byte-at-a-time, file-at-once, or anywhere in between therefore
// produces identical output, which is the regression gate the batch
// wrapper enforces.
//
// A window centered at t freezes — its tuple is emitted and nothing can
// change it — once the packet watermark (the timestamp of the newest
// kept packet) reaches t + Window/2 + Settle. The settle margin is how
// long the distiller waits for stragglers: replies whose round trips
// land after the window's own edge. Emission lag behind the live edge
// is therefore bounded by Window/2 + Settle + Step once estimates flow.
package stream

import (
	"errors"
	"fmt"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/obs"
	"tracemod/internal/packet"
	"tracemod/internal/replay"
	"tracemod/internal/tracefmt"
)

// Errors from the streaming distiller. The distill package re-exports
// the first three, so errors.Is works across both APIs.
var (
	ErrNoWorkload  = errors.New("distill: trace contains no ping-workload triplets")
	ErrNoEstimates = errors.New("distill: no usable delay estimates in trace")
	ErrDirtyTrace  = errors.New("distill: trace fails validation")
	ErrClosed      = errors.New("distill/stream: distiller is closed")
)

// Config parameterizes a Distiller.
type Config struct {
	// Window is the averaging width; the paper chooses five seconds to
	// balance discounting outliers against reactivity. Default 5s.
	Window time.Duration
	// Step is the tuple emission period (and each tuple's duration).
	// Default 1s.
	Step time.Duration
	// Settle is how far the packet watermark must run past a window's
	// trailing edge before the window freezes — the grace period for
	// replies still in flight. Default: Window.
	Settle time.Duration
	// Sanitize bounds the input gates; the zero value uses the defaults
	// documented on SanitizeOptions.
	Sanitize SanitizeOptions
	// Strict refuses imperfect input: the first record the sanitizer
	// would repair or drop makes every subsequent call return
	// ErrDirtyTrace.
	Strict bool
	// KeepEstimates retains every instantaneous estimate for the final
	// Summary. Off, the estimate buffer is pruned to the active window
	// and Summary.Estimates stays nil — the bounded-memory mode a
	// long-lived live stream wants.
	KeepEstimates bool
	// OnTuple, if non-nil, is called synchronously with each tuple the
	// moment its window freezes — the live path into a growing replay
	// trace.
	OnTuple func(core.Tuple)
	// Metrics, if non-nil, accumulates streaming telemetry on the
	// registry (names under tracemod_stream_*).
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 5 * time.Second
	}
	if c.Step <= 0 {
		c.Step = time.Second
	}
	if c.Settle <= 0 {
		c.Settle = c.Window
	}
	c.Sanitize = c.Sanitize.WithDefaults()
	return c
}

// Estimate is one instantaneous parameter estimate derived from a
// triplet.
type Estimate struct {
	// At is the triplet's position in the trace (stage-1 send time).
	At time.Duration
	// Params are the solved (or corrected) delay parameters.
	Params core.DelayParams
	// Corrected reports whether the paper's negative-value fallback was
	// applied instead of a raw solution.
	Corrected bool
}

// Summary is the result of a completed stream, mirroring the batch
// distiller's diagnostics.
type Summary struct {
	// Replay is the accumulated replay trace (every tuple also handed
	// to OnTuple, in order).
	Replay core.Trace
	// Estimates holds every instantaneous estimate when
	// Config.KeepEstimates is set, nil otherwise.
	Estimates []Estimate

	TripletsTotal    int
	TripletsComplete int
	Corrections      int
	EchoesSent       int
	RepliesSeen      int

	Collected CollectedReport
	Tuples    replay.SanitizeReport
}

// echoOut is one outbound ECHO observation.
type echoOut struct {
	at   time.Duration
	seq  uint16
	size int
	rtt  time.Duration // filled when its reply is seen; 0 = lost
}

// lagBounds spans sub-window lag (an aggressive small-window config)
// through multi-minute stalls, with single-second resolution around the
// default config's freeze bound (Window/2 + Settle + Step = 8.5s) so an
// SLO quantile there resolves on the right side of its threshold.
var lagBounds = []time.Duration{
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2 * time.Second, 5 * time.Second, 6 * time.Second,
	7 * time.Second, 8 * time.Second, 9 * time.Second, 10 * time.Second,
	15 * time.Second, 30 * time.Second, time.Minute, 5 * time.Minute,
}

// instruments is the tracemod_stream_* metric set.
type instruments struct {
	records *obs.Counter
	windows *obs.Counter
	lag     *obs.Histogram
}

func newInstruments(reg *obs.Registry) *instruments {
	return &instruments{
		records: reg.Counter("tracemod_stream_records_total", "Collected-trace records ingested by streaming distillers."),
		windows: reg.Counter("tracemod_stream_windows_emitted_total", "Replay tuples emitted by streaming distillers."),
		lag:     reg.Histogram("tracemod_stream_distill_lag", "Distillation lag: packet watermark minus emitted window center, at emission.", lagBounds),
	}
}

// LagBounds exposes the lag histogram's bucket bounds (for SLO wiring).
func LagBounds() []time.Duration { return append([]time.Duration(nil), lagBounds...) }

// Distiller is the incremental solver. It is not safe for concurrent
// use; callers owning a live stream serialize Ingest and Close.
type Distiller struct {
	cfg    Config
	half   time.Duration
	pktG   *PacketGate
	devG   *DeviceGate
	rep    CollectedReport
	strict error // sticky ErrDirtyTrace once Strict trips

	// Timeline. start anchors trace time at the first kept packet; wm
	// is the watermark — the offset of the newest kept packet.
	start     int64
	haveStart bool
	wm        time.Duration

	// Workload state. outs holds the not-yet-pruned suffix of the
	// outbound-echo sequence; outsBase is the global index of outs[0].
	outs      []*echoOut
	outsBase  int
	outsTotal int
	lastOut   time.Duration
	bySeq     map[uint16]*echoOut
	sSmall    int
	sLarge    int

	// Triplet scan: the next global anchor index to examine, plus the
	// non-cascading correction base.
	scan    int
	lastRaw *core.DelayParams

	// Estimates: the pruned working set for window averaging, the
	// first-ever params for the leading-gap rule, and (optionally) the
	// full history.
	ests     []Estimate
	estCount int
	first    core.DelayParams
	all      []Estimate

	// Windowing: center of the next window to freeze, plus the
	// hold-last state.
	nextT    time.Duration
	last     core.DelayParams
	haveLast bool

	emitted core.Trace
	srep    replay.SanitizeReport

	tripletsTotal    int
	tripletsComplete int
	corrections      int
	repliesSeen      int

	ins    *instruments
	closed bool
}

// New creates a streaming distiller.
func New(cfg Config) *Distiller {
	cfg = cfg.withDefaults()
	d := &Distiller{
		cfg:   cfg,
		half:  cfg.Window / 2,
		pktG:  NewPacketGate(cfg.Sanitize),
		devG:  NewDeviceGate(cfg.Sanitize),
		bySeq: map[uint16]*echoOut{},
	}
	if cfg.Metrics != nil {
		d.ins = newInstruments(cfg.Metrics)
	}
	return d
}

// Ingest routes one decoded trace record (as returned by a tracefmt
// reader) to the matching typed method. Unknown record values are
// ignored, mirroring the format's skip-unknown stance.
func (d *Distiller) Ingest(rec any) error {
	switch v := rec.(type) {
	case tracefmt.PacketRecord:
		return d.Packet(v)
	case tracefmt.DeviceRecord:
		return d.Device(v)
	case tracefmt.LostRecord:
		return d.Lost(v)
	default:
		return nil
	}
}

// dirty trips (or ignores, when not strict) a sanitizer action.
func (d *Distiller) dirty(format string, args ...any) error {
	if !d.cfg.Strict {
		return nil
	}
	if d.strict == nil {
		d.strict = fmt.Errorf("%w: %s", ErrDirtyTrace, fmt.Sprintf(format, args...))
	}
	return d.strict
}

// Packet ingests one packet record: it is gated, classified (outbound
// echo / inbound reply), and advances the watermark — freezing and
// emitting every window whose settle margin it satisfies.
func (d *Distiller) Packet(p tracefmt.PacketRecord) error {
	if d.closed {
		return ErrClosed
	}
	if d.strict != nil {
		return d.strict
	}
	if d.ins != nil {
		d.ins.records.Inc()
	}
	p, v := d.pktG.Admit(p)
	if !v.Keep {
		d.rep.PacketsDropped++
		return d.dirty("packet %d dropped by sanitizer", d.rep.PacketsKept+d.rep.PacketsDropped-1)
	}
	if v.Clamped {
		d.rep.PacketsClamped++
	}
	if v.RTTCleared {
		d.rep.RTTsCleared++
	}
	d.rep.PacketsKept++
	if v.Dirty() {
		if err := d.dirty("packet %d repaired by sanitizer", d.rep.PacketsKept-1); err != nil {
			return err
		}
	}

	if !d.haveStart {
		d.start, d.haveStart = p.At, true
	}
	at := time.Duration(p.At - d.start)
	if at > d.wm {
		d.wm = at
	}

	switch {
	case p.Dir == tracefmt.DirOut && p.Protocol == packet.ProtoICMP && p.ICMPType == packet.ICMPEcho:
		o := &echoOut{at: at, seq: p.Seq, size: int(p.Size)}
		if d.outsTotal == 0 {
			d.sSmall, d.sLarge = o.size, o.size
		} else {
			if o.size < d.sSmall {
				d.sSmall = o.size
			}
			if o.size > d.sLarge {
				d.sLarge = o.size
			}
		}
		d.outs = append(d.outs, o)
		d.outsTotal++
		d.lastOut = at
		d.bySeq[p.Seq] = o
	case p.Dir == tracefmt.DirIn && p.Protocol == packet.ProtoICMP && p.ICMPType == packet.ICMPEchoReply && p.RTT > 0:
		if o, ok := d.bySeq[p.Seq]; ok {
			if o.rtt <= 0 {
				d.repliesSeen++
			}
			o.rtt = time.Duration(p.RTT)
		}
	}

	d.pump(false)
	return nil
}

// Device ingests one device-characteristics record. The solver does not
// use device readings, but the sanitizer judges them (for the report
// and for Strict) exactly as the batch pass does.
func (d *Distiller) Device(rec tracefmt.DeviceRecord) error {
	if d.closed {
		return ErrClosed
	}
	if d.strict != nil {
		return d.strict
	}
	if d.ins != nil {
		d.ins.records.Inc()
	}
	_, v := d.devG.Admit(rec)
	if !v.Keep {
		d.rep.DevicesDropped++
		return d.dirty("device record %d dropped by sanitizer", d.rep.DevicesKept+d.rep.DevicesDropped-1)
	}
	if v.Clamped {
		d.rep.DevicesClamped++
	}
	d.rep.DevicesKept++
	if v.Dirty() {
		return d.dirty("device record %d repaired by sanitizer", d.rep.DevicesKept-1)
	}
	return nil
}

// Lost ingests a lost-records marker; it carries no solver information.
func (d *Distiller) Lost(tracefmt.LostRecord) error {
	if d.closed {
		return ErrClosed
	}
	if d.strict != nil {
		return d.strict
	}
	if d.ins != nil {
		d.ins.records.Inc()
	}
	return nil
}

// out returns the echo at global index i.
func (d *Distiller) out(i int) *echoOut { return d.outs[i-d.outsBase] }

// span is the window loop's horizon: the last outbound echo or the last
// packet of any kind, whichever is later (the batch distiller's span).
func (d *Distiller) span() time.Duration {
	if d.wm > d.lastOut {
		return d.wm
	}
	return d.lastOut
}

// pump freezes and emits every window the watermark has settled past.
// With final set (at Close) the settle margin is waived: whatever has
// been seen is all there will ever be.
func (d *Distiller) pump(final bool) {
	if d.outsTotal == 0 {
		return
	}
	for d.nextT <= d.span() {
		t := d.nextT
		if !final && d.wm < t+d.half+d.cfg.Settle {
			return
		}
		d.advanceScan(t+d.half, final)
		if d.estCount == 0 {
			// No estimate exists yet, so the leading-gap rule has no
			// parameters to hold. Stall: the windows emit in catch-up
			// once the first triplet solves (or never — Close then
			// reports ErrNoEstimates).
			return
		}
		d.emitWindow(t)
		d.nextT += d.cfg.Step
		d.prune()
	}
}

// advanceScan walks the triplet scan up to (not including) anchors at
// or past limit, solving or correcting each complete small/large/large
// consecutive-sequence group into an estimate. With final set the limit
// is waived.
func (d *Distiller) advanceScan(limit time.Duration, final bool) {
	for d.scan+2 < d.outsTotal {
		a := d.out(d.scan)
		if !final && a.at >= limit {
			return
		}
		b, c := d.out(d.scan+1), d.out(d.scan+2)
		d.scan++
		if a.size != d.sSmall || b.size != d.sLarge || c.size != d.sLarge {
			continue
		}
		if b.seq != a.seq+1 || c.seq != b.seq+1 {
			continue
		}
		d.tripletsTotal++
		if a.rtt <= 0 || b.rtt <= 0 || c.rtt <= 0 {
			continue // a lost reply: contributes to loss, not to delay
		}
		d.tripletsComplete++
		tobs := core.TripletObs{T1: a.rtt, T2: b.rtt, T3: c.rtt, S1: d.sSmall, S2: d.sLarge}
		params, err := core.SolveTriplet(tobs)
		switch {
		case err == nil:
			p := params
			d.lastRaw = &p
			d.addEstimate(Estimate{At: a.at, Params: params})
		case errors.Is(err, core.ErrNegativeParams) && d.lastRaw != nil:
			corrected := core.CorrectTriplet(*d.lastRaw, tobs)
			d.corrections++
			d.addEstimate(Estimate{At: a.at, Params: corrected, Corrected: true})
		default:
			// Unsolvable with no prior context: drop the group.
		}
	}
}

func (d *Distiller) addEstimate(e Estimate) {
	if d.estCount == 0 {
		d.first = e.Params
	}
	d.estCount++
	d.ests = append(d.ests, e)
	if d.cfg.KeepEstimates {
		d.all = append(d.all, e)
	}
}

// emitWindow freezes the window centered at t: averages the estimates
// inside it (holding the last average across quiet windows, and the
// first-ever estimate across a leading gap), pairs the result with a
// loss estimate from the echoes sent in the window, sanitizes, and
// emits.
func (d *Distiller) emitWindow(t time.Duration) {
	lo, hi := t-d.half, t+d.half
	var fSum, vbSum, vrSum float64
	n := 0
	for _, e := range d.ests {
		if e.At >= lo && e.At < hi {
			fSum += float64(e.Params.F)
			vbSum += float64(e.Params.Vb)
			vrSum += float64(e.Params.Vr)
			n++
		}
	}
	var params core.DelayParams
	switch {
	case n > 0:
		params = core.DelayParams{
			F:  time.Duration(fSum / float64(n)),
			Vb: core.PerByte(vbSum / float64(n)),
			Vr: core.PerByte(vrSum / float64(n)),
		}
		d.last = params
		d.haveLast = true
	case d.haveLast:
		params = d.last // quiet window: hold previous conditions
	default:
		params = d.first // leading gap: use first estimate
	}

	// Loss over this window: echoes sent within it vs. how many of
	// those were answered (sequence-number bookkeeping, Eqs. 9-10).
	sent, answered := 0, 0
	for _, o := range d.outs {
		if o.at >= lo && o.at < hi {
			sent++
			if o.rtt > 0 {
				answered++
			}
		}
	}
	loss := core.EstimateLoss(sent, answered)

	tu := core.Tuple{D: d.cfg.Step, DelayParams: params, L: loss}
	sane, rep, err := replay.Sanitize(core.Trace{tu})
	d.srep.Kept += rep.Kept
	d.srep.Clamped += rep.Clamped
	d.srep.Dropped += rep.Dropped
	if err != nil {
		return // the tuple was unrepairable; the window emits nothing
	}
	tu = sane[0]
	d.emitted = append(d.emitted, tu)
	if d.ins != nil {
		d.ins.windows.Inc()
		lag := d.wm - t
		if lag < 0 {
			lag = 0
		}
		d.ins.lag.Observe(lag)
	}
	if d.cfg.OnTuple != nil {
		d.cfg.OnTuple(tu)
	}
}

// prune discards state no future window or scan step can touch: echoes
// behind both the scan cursor and the next window's left edge, and
// estimates behind that edge (unless KeepEstimates retains history in
// d.all — the working set is pruned regardless, so pruning never
// changes output).
func (d *Distiller) prune() {
	floor := d.nextT - d.half
	drop := 0
	for drop < len(d.outs) && d.outsBase+drop < d.scan && d.outs[drop].at < floor {
		drop++
	}
	if drop > 0 {
		d.outs = d.outs[drop:]
		d.outsBase += drop
	}
	eDrop := 0
	for eDrop < len(d.ests) && d.ests[eDrop].At < floor {
		eDrop++
	}
	if eDrop > 0 {
		d.ests = d.ests[eDrop:]
	}
}

// Lag reports how far the packet watermark has run past the emitted
// coverage (the end of the last frozen window). Zero before any packet
// arrives; bounded by Window/2 + Settle + Step while estimates flow.
func (d *Distiller) Lag() time.Duration {
	lag := d.wm - d.nextT
	if lag < 0 {
		return 0
	}
	return lag
}

// Emitted reports how many tuples have frozen so far.
func (d *Distiller) Emitted() int { return len(d.emitted) }

// Watermark reports the offset of the newest kept packet.
func (d *Distiller) Watermark() time.Duration { return d.wm }

// Close flushes every remaining window (the settle margin is waived:
// the stream has ended, nothing more is coming) and returns the
// summary. The error mirrors the batch distiller: ErrDirtyTrace under
// Strict, ErrNoWorkload with no echoes, ErrNoEstimates when no triplet
// solved or no tuple survived sanitation.
func (d *Distiller) Close() (*Summary, error) {
	if d.closed {
		return nil, ErrClosed
	}
	d.closed = true
	if d.strict != nil {
		return nil, d.strict
	}
	if d.outsTotal == 0 {
		return nil, ErrNoWorkload
	}
	d.pump(true)
	if d.estCount == 0 {
		return nil, ErrNoEstimates
	}
	if len(d.emitted) == 0 {
		return nil, ErrNoEstimates
	}
	return &Summary{
		Replay:           d.emitted,
		Estimates:        d.all,
		TripletsTotal:    d.tripletsTotal,
		TripletsComplete: d.tripletsComplete,
		Corrections:      d.corrections,
		EchoesSent:       d.outsTotal,
		RepliesSeen:      d.repliesSeen,
		Collected:        d.rep,
		Tuples:           d.srep,
	}, nil
}
