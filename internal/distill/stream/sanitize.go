// Online collected-trace sanitization: the record-at-a-time form of the
// batch sanitizer in package distill. A gate holds the per-chain state
// (the previous kept timestamp) and judges each record as it arrives, so
// a live stream can be scrubbed with exactly the decisions the batch
// pass would have made — the batch sanitizer is now a loop over these
// gates, which is what makes batch and streaming output identical by
// construction.
package stream

import (
	"fmt"
	"math"
	"time"

	"tracemod/internal/tracefmt"
)

// SanitizeOptions bound what the sanitizer tolerates.
type SanitizeOptions struct {
	// ClockSkew is how far a timestamp may run backwards and still be
	// treated as clock skew (clamped to its predecessor) rather than
	// corruption (dropped). Default 50ms.
	ClockSkew time.Duration
	// MaxGap is the largest forward jump between consecutive records
	// before the later record is judged corrupt and dropped — without
	// this bound, a single damaged timestamp near 2^62 would make the
	// windowing loop walk half an eternity of empty steps. Default 1h.
	MaxGap time.Duration
	// MaxRTT bounds a believable round-trip time; larger values are
	// cleared to the "no RTT" sentinel. Default 5m.
	MaxRTT time.Duration
}

// WithDefaults fills zero fields with the documented defaults.
func (o SanitizeOptions) WithDefaults() SanitizeOptions {
	if o.ClockSkew <= 0 {
		o.ClockSkew = 50 * time.Millisecond
	}
	if o.MaxGap <= 0 {
		o.MaxGap = time.Hour
	}
	if o.MaxRTT <= 0 {
		o.MaxRTT = 5 * time.Minute
	}
	return o
}

// CollectedReport accounts for a sanitizing pass over a collected trace.
type CollectedReport struct {
	PacketsKept    int
	PacketsClamped int
	PacketsDropped int
	DevicesKept    int
	DevicesClamped int
	DevicesDropped int
	// RTTsCleared counts packets whose reported round-trip time was
	// implausible and was reset to the -1 sentinel (the packet itself
	// survives; it simply no longer contributes a delay sample).
	RTTsCleared int
}

// Clean reports whether sanitization changed nothing.
func (r CollectedReport) Clean() bool {
	return r.PacketsClamped == 0 && r.PacketsDropped == 0 &&
		r.DevicesClamped == 0 && r.DevicesDropped == 0 && r.RTTsCleared == 0
}

func (r CollectedReport) String() string {
	if r.Clean() {
		return fmt.Sprintf("clean: %d packets, %d device records", r.PacketsKept, r.DevicesKept)
	}
	return fmt.Sprintf("sanitized: %d/%d packets kept (%d clamped, %d rtts cleared), %d/%d device records kept (%d clamped)",
		r.PacketsKept, r.PacketsKept+r.PacketsDropped, r.PacketsClamped, r.RTTsCleared,
		r.DevicesKept, r.DevicesKept+r.DevicesDropped, r.DevicesClamped)
}

// Finite32 reports whether a device reading carries information (not
// NaN/Inf).
func Finite32(f float32) bool {
	f64 := float64(f)
	return !math.IsNaN(f64) && !math.IsInf(f64, 0)
}

// Monotonic decides what to do with a record timestamped at, given the
// previous kept record's timestamp. It returns the (possibly clamped)
// timestamp, whether the record survives, and whether it was clamped.
// Callers pass defaulted options.
func Monotonic(at, prev int64, first bool, opts SanitizeOptions) (int64, bool, bool) {
	if first {
		return at, true, false
	}
	if at < prev {
		if prev-at <= int64(opts.ClockSkew) {
			return prev, true, true // clock skew: pin to the predecessor
		}
		return at, false, false // a genuine jump into the past: corrupt
	}
	if at-prev > int64(opts.MaxGap) {
		return at, false, false // a jump past any believable gap: corrupt
	}
	return at, true, false
}

// PacketVerdict is a PacketGate's judgment of one record.
type PacketVerdict struct {
	// Keep reports that the (possibly repaired) record survives.
	Keep bool
	// Clamped reports a backwards timestamp pinned to its predecessor.
	Clamped bool
	// RTTCleared reports an implausible round-trip time reset to -1.
	RTTCleared bool
}

// Dirty reports whether the gate had to act at all.
func (v PacketVerdict) Dirty() bool { return !v.Keep || v.Clamped || v.RTTCleared }

// PacketGate sanitizes a stream of packet records one at a time,
// maintaining the monotonic-timestamp chain across calls.
type PacketGate struct {
	opts  SanitizeOptions
	prev  int64
	first bool
}

// NewPacketGate creates a gate with defaulted options.
func NewPacketGate(opts SanitizeOptions) *PacketGate {
	return &PacketGate{opts: opts.WithDefaults(), first: true}
}

// Admit judges one packet record, returning the repaired record and the
// verdict. The gate's chain advances only when the record is kept.
func (g *PacketGate) Admit(p tracefmt.PacketRecord) (tracefmt.PacketRecord, PacketVerdict) {
	var v PacketVerdict
	if p.Size == 0 || p.Dir > 1 {
		return p, v
	}
	at, keep, clamped := Monotonic(p.At, g.prev, g.first, g.opts)
	if !keep {
		return p, v
	}
	p.At = at
	if p.RTT < -1 || p.RTT > int64(g.opts.MaxRTT) {
		p.RTT = -1
		v.RTTCleared = true
	}
	v.Keep, v.Clamped = true, clamped
	g.prev, g.first = p.At, false
	return p, v
}

// DeviceVerdict is a DeviceGate's judgment of one record.
type DeviceVerdict struct {
	Keep    bool
	Clamped bool
}

// Dirty reports whether the gate had to act at all.
func (v DeviceVerdict) Dirty() bool { return !v.Keep || v.Clamped }

// DeviceGate sanitizes a stream of device-characteristic records.
type DeviceGate struct {
	opts  SanitizeOptions
	prev  int64
	first bool
}

// NewDeviceGate creates a gate with defaulted options.
func NewDeviceGate(opts SanitizeOptions) *DeviceGate {
	return &DeviceGate{opts: opts.WithDefaults(), first: true}
}

// Admit judges one device record.
func (g *DeviceGate) Admit(d tracefmt.DeviceRecord) (tracefmt.DeviceRecord, DeviceVerdict) {
	var v DeviceVerdict
	if !Finite32(d.Signal) || !Finite32(d.Quality) || !Finite32(d.Silence) {
		return d, v
	}
	at, keep, clamped := Monotonic(d.At, g.prev, g.first, g.opts)
	if !keep {
		return d, v
	}
	d.At = at
	v.Keep, v.Clamped = true, clamped
	g.prev, g.first = d.At, false
	return d, v
}
