package distill

import (
	"strings"
	"testing"
	"time"

	"tracemod/internal/capture"
	"tracemod/internal/obs"
	"tracemod/internal/pinger"
	"tracemod/internal/scenario"
	"tracemod/internal/sim"
)

func TestDistillTelemetry(t *testing.T) {
	s := sim.New(1)
	tb := scenario.BuildWireless(s, scenario.Porter)
	dur := 60 * time.Second
	pinger.Start(s, tb.Laptop, scenario.ServerIP, dur)
	tr, err := capture.Collect(s, tb.Laptop.NIC(0), 1<<16, dur, "obs")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Obs = reg
	res, err := Distill(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) int64 { return reg.Counter(name, "").Load() }
	if got := get("tracemod_distill_tuples_emitted_total"); got != int64(len(res.Replay)) {
		t.Fatalf("tuples counter = %d, result has %d", got, len(res.Replay))
	}
	if got := get("tracemod_distill_triplets_total"); got != int64(res.TripletsTotal) {
		t.Fatalf("triplets counter = %d, result has %d", got, res.TripletsTotal)
	}
	if got := get("tracemod_distill_corrections_total"); got != int64(res.Corrections) {
		t.Fatalf("corrections counter = %d, result has %d", got, res.Corrections)
	}
	if get("tracemod_distill_runs_total") != 1 {
		t.Fatal("runs counter should be 1")
	}

	// A second run on a shared registry accumulates.
	if _, err := Distill(tr, cfg); err != nil {
		t.Fatal(err)
	}
	if got := get("tracemod_distill_tuples_emitted_total"); got != 2*int64(len(res.Replay)) {
		t.Fatalf("shared registry should accumulate: %d", got)
	}
	if !strings.Contains(reg.PrometheusString(), "tracemod_distill_runs_total 2") {
		t.Fatal("export missing accumulated run counter")
	}
}
