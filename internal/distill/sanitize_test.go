package distill

import (
	"errors"
	"math"
	"testing"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/tracefmt"
)

func TestSanitizeCollectedCleanPassthrough(t *testing.T) {
	truth := core.DelayParams{F: 2 * time.Millisecond, Vb: 5000, Vr: 800}
	tr := synthTrace(5, func(int) core.DelayParams { return truth }, noLoss)
	out, rep := SanitizeCollected(tr, SanitizeOptions{})
	if !rep.Clean() {
		t.Fatalf("clean trace reported dirty: %s", rep)
	}
	if len(out.Packets) != len(tr.Packets) {
		t.Fatalf("packets %d -> %d", len(tr.Packets), len(out.Packets))
	}
	if len(ValidateCollected(tr, SanitizeOptions{})) != 0 {
		t.Fatal("ValidateCollected flagged a clean trace")
	}
}

func TestSanitizeCollectedRules(t *testing.T) {
	tr := &tracefmt.Trace{
		Packets: []tracefmt.PacketRecord{
			{At: 0, Size: 100, RTT: -1},
			{At: 1e6, Size: 0, RTT: -1},                              // zero size: drop
			{At: 2e6, Size: 100, Dir: 9, RTT: -1},                    // bad direction: drop
			{At: 3e6, Size: 100, RTT: -7},                            // bad rtt sentinel: clear
			{At: 3e6 - 10e6, Size: 100, RTT: -1},                     // 10ms backwards: clamp
			{At: int64(time.Hour) * 30, Size: 100, RTT: -1},          // 30h forward: drop
			{At: 4e6, Size: 100, RTT: int64(time.Hour)},              // absurd rtt: clear
			{At: -1e18, Size: 100, RTT: -1},                          // deep past: drop
		},
		Devices: []tracefmt.DeviceRecord{
			{At: 0, Signal: 10},
			{At: 1e6, Signal: float32(math.NaN())}, // NaN reading: drop
			{At: 2e6, Quality: float32(math.Inf(1))},
			{At: 3e6, Signal: 11},
		},
	}
	out, rep := SanitizeCollected(tr, SanitizeOptions{})
	if rep.PacketsKept != 4 || rep.PacketsDropped != 4 {
		t.Fatalf("packets: %s", rep)
	}
	if rep.PacketsClamped != 1 || rep.RTTsCleared != 2 {
		t.Fatalf("clamped=%d cleared=%d: %s", rep.PacketsClamped, rep.RTTsCleared, rep)
	}
	if rep.DevicesKept != 2 || rep.DevicesDropped != 2 {
		t.Fatalf("devices: %s", rep)
	}
	// The clamped packet pins to its predecessor's timestamp.
	if out.Packets[2].At != 3e6 {
		t.Fatalf("clamped At = %d, want 3e6", out.Packets[2].At)
	}
	// Cleared RTTs become the sentinel.
	for _, p := range out.Packets {
		if p.RTT < -1 || p.RTT > int64(time.Hour) {
			t.Fatalf("rtt %d survived", p.RTT)
		}
	}
	// Timestamps are monotonic on the way out.
	for i := 1; i < len(out.Packets); i++ {
		if out.Packets[i].At < out.Packets[i-1].At {
			t.Fatalf("output not monotonic at %d", i)
		}
	}
	// The input was not modified.
	if tr.Packets[4].At != 3e6-10e6 {
		t.Fatal("SanitizeCollected mutated its input")
	}
	// ValidateCollected names every class of problem without modifying.
	problems := ValidateCollected(tr, SanitizeOptions{})
	if len(problems) == 0 {
		t.Fatal("ValidateCollected found nothing on a dirty trace")
	}
}

func TestValidateCollectedCapsOutput(t *testing.T) {
	tr := &tracefmt.Trace{}
	for i := 0; i < 100; i++ {
		tr.Packets = append(tr.Packets, tracefmt.PacketRecord{At: int64(i), Size: 0})
	}
	problems := ValidateCollected(tr, SanitizeOptions{})
	if len(problems) != maxProblems {
		t.Fatalf("problems = %d, want cap %d", len(problems), maxProblems)
	}
}

func TestDistillStrictRejectsDirtyTrace(t *testing.T) {
	truth := core.DelayParams{F: 2 * time.Millisecond, Vb: 5000, Vr: 800}
	tr := synthTrace(10, func(int) core.DelayParams { return truth }, noLoss)
	tr.Packets[7].Size = 0 // one bad record

	cfg := DefaultConfig()
	cfg.Strict = true
	if _, err := Distill(tr, cfg); !errors.Is(err, ErrDirtyTrace) {
		t.Fatalf("err = %v, want ErrDirtyTrace", err)
	}

	// Non-strict mode distills around the damage.
	cfg.Strict = false
	res, err := Distill(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collected.Clean() || res.Collected.PacketsDropped != 1 {
		t.Fatalf("collected report = %s", res.Collected)
	}
	if err := res.Replay.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDistillBoundsCorruptTimestamp is the reason MaxGap exists: one
// damaged timestamp near the int64 horizon must not make the windowing
// loop walk millions of empty steps.
func TestDistillBoundsCorruptTimestamp(t *testing.T) {
	truth := core.DelayParams{F: 2 * time.Millisecond, Vb: 5000, Vr: 800}
	tr := synthTrace(10, func(int) core.DelayParams { return truth }, noLoss)
	tr.Packets[len(tr.Packets)-1].At = int64(1) << 62

	done := make(chan *Result, 1)
	go func() {
		res, err := Distill(tr, DefaultConfig())
		if err != nil {
			done <- nil
			return
		}
		done <- res
	}()
	select {
	case res := <-done:
		if res == nil {
			t.Fatal("distill failed")
		}
		if res.Collected.PacketsDropped != 1 {
			t.Fatalf("collected report = %s", res.Collected)
		}
		if got := res.Replay.TotalDuration(); got > time.Minute {
			t.Fatalf("replay spans %v; the corrupt timestamp leaked into windowing", got)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("distill hung on a corrupt timestamp")
	}
}
