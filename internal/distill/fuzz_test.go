package distill

import (
	"bytes"
	"testing"
	"time"

	"tracemod/internal/tracefmt"
)

// FuzzDistill drives the whole ingest path the emud store uses for
// collected traces: salvage-parse arbitrary bytes, then distill whatever
// survived. Invariants: no panic, bounded runtime (the sanitizer's
// MaxGap keeps the windowing loop finite no matter what timestamps the
// fuzzer invents), and any successful result passes core validation.
func FuzzDistill(f *testing.F) {
	var buf bytes.Buffer
	tr := &tracefmt.Trace{Header: tracefmt.Header{Device: "wavelan0"}}
	if err := tracefmt.WriteAll(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			t.Skip("bounding fuzz input size")
		}
		tr, _, err := tracefmt.SalvageAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		cfg := DefaultConfig()
		// Tight gap bound: 64KB of records can still spell out thousands
		// of near-MaxGap forward jumps, and the windowing loop walks the
		// whole span in 1s steps.
		cfg.Sanitize.MaxGap = 10 * time.Second
		res, err := Distill(tr, cfg)
		if err != nil {
			return // no workload in random bytes: expected
		}
		if err := res.Replay.Validate(); err != nil {
			t.Fatalf("distill emitted an invalid replay trace: %v", err)
		}
	})
}
