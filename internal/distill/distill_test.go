package distill

import (
	"math"
	"sort"
	"testing"
	"time"

	"tracemod/internal/capture"
	"tracemod/internal/core"
	"tracemod/internal/packet"
	"tracemod/internal/pinger"
	"tracemod/internal/scenario"
	"tracemod/internal/sim"
	"tracemod/internal/tracefmt"
)

const (
	s1 = 60   // small probe wire size
	s2 = 1028 // large probe wire size
)

// synthTrace builds a collected trace as the pinger+tracer would produce
// over a channel with time-varying parameters. paramsAt gives the channel
// condition for each 1-second group; lost reports whether a given seq's
// reply should be missing.
func synthTrace(seconds int, paramsAt func(sec int) core.DelayParams, lost func(seq uint16) bool) *tracefmt.Trace {
	tr := &tracefmt.Trace{Header: tracefmt.Header{Device: "wavelan0"}}
	seq := uint16(0)
	for sec := 0; sec < seconds; sec++ {
		p := paramsAt(sec)
		base := int64(sec) * int64(time.Second)
		emit := func(size int, rtt time.Duration) {
			seq++
			tr.Packets = append(tr.Packets, tracefmt.PacketRecord{
				At: base, Dir: tracefmt.DirOut, Size: uint16(size),
				Protocol: packet.ProtoICMP, ICMPType: packet.ICMPEcho, ID: 1, Seq: seq, RTT: -1,
			})
			if !lost(seq) {
				tr.Packets = append(tr.Packets, tracefmt.PacketRecord{
					At: base + int64(rtt), Dir: tracefmt.DirIn, Size: uint16(size),
					Protocol: packet.ProtoICMP, ICMPType: packet.ICMPEchoReply, ID: 1, Seq: seq, RTT: int64(rtt),
				})
			}
		}
		t1 := p.RoundTrip(s1)
		t2 := p.RoundTrip(s2)
		t3 := t2 + p.Vb.Cost(s2)
		emit(s1, t1)
		emit(s2, t2)
		emit(s2, t3)
	}
	// The collection daemon drains records in timestamp order; the
	// interleaved construction above does not, so restore that invariant.
	sort.SliceStable(tr.Packets, func(i, j int) bool { return tr.Packets[i].At < tr.Packets[j].At })
	return tr
}

func noLoss(uint16) bool { return false }

func TestRecoverConstantParameters(t *testing.T) {
	truth := core.DelayParams{F: 2 * time.Millisecond, Vb: 5000, Vr: 800}
	tr := synthTrace(30, func(int) core.DelayParams { return truth }, noLoss)
	res, err := Distill(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TripletsComplete != 30 || res.Corrections != 0 {
		t.Fatalf("triplets=%d corrections=%d", res.TripletsComplete, res.Corrections)
	}
	if err := res.Replay.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, tu := range res.Replay {
		if math.Abs(float64(tu.F-truth.F)) > 5e4 {
			t.Fatalf("tuple %d F=%v, want ≈%v", i, tu.F, truth.F)
		}
		if math.Abs(float64(tu.Vb-truth.Vb)) > 50 || math.Abs(float64(tu.Vr-truth.Vr)) > 50 {
			t.Fatalf("tuple %d Vb=%v Vr=%v", i, tu.Vb, tu.Vr)
		}
		if tu.L != 0 {
			t.Fatalf("tuple %d loss = %v, want 0", i, tu.L)
		}
	}
}

func TestTracksStepChange(t *testing.T) {
	slow := core.DelayParams{F: 10 * time.Millisecond, Vb: 20000, Vr: 2000}
	fast := core.DelayParams{F: time.Millisecond, Vb: 4000, Vr: 400}
	tr := synthTrace(40, func(sec int) core.DelayParams {
		if sec < 20 {
			return fast
		}
		return slow
	}, noLoss)
	res, err := Distill(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	early := res.Replay.At(10*time.Second, false)
	late := res.Replay.At(35*time.Second, false)
	if math.Abs(float64(early.Vb-fast.Vb)) > 100 {
		t.Fatalf("early Vb = %v, want ≈%v", early.Vb, fast.Vb)
	}
	if math.Abs(float64(late.Vb-slow.Vb)) > 200 {
		t.Fatalf("late Vb = %v, want ≈%v", late.Vb, slow.Vb)
	}
	// The transition is smeared over at most the window width.
	mid := res.Replay.At(26*time.Second, false)
	if mid.Vb < fast.Vb || mid.Vb > slow.Vb {
		t.Fatalf("post-transition Vb = %v outside [fast, slow]", mid.Vb)
	}
}

func TestLossEstimation(t *testing.T) {
	truth := core.DelayParams{F: 2 * time.Millisecond, Vb: 5000, Vr: 500}
	// Lose every reply for one of each group's three echoes in the middle
	// ten seconds: b/a = 2/3 there.
	tr := synthTrace(30, func(int) core.DelayParams { return truth }, func(seq uint16) bool {
		sec := int((seq - 1) / 3)
		return sec >= 10 && sec < 20 && seq%3 == 2
	})
	res, err := Distill(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantMid := 1 - math.Sqrt(2.0/3.0)
	mid := res.Replay.At(15*time.Second, false)
	if math.Abs(mid.L-wantMid) > 0.02 {
		t.Fatalf("mid loss = %v, want ≈%v", mid.L, wantMid)
	}
	if early := res.Replay.At(2*time.Second, false); early.L != 0 {
		t.Fatalf("early loss = %v, want 0", early.L)
	}
}

func TestNegativeTripletCorrected(t *testing.T) {
	truth := core.DelayParams{F: 2 * time.Millisecond, Vb: 5000, Vr: 500}
	tr := synthTrace(10, func(int) core.DelayParams { return truth }, noLoss)
	// Sabotage group 5 (seqs 16,17,18): make t2 < t1 so V goes negative.
	for i := range tr.Packets {
		p := &tr.Packets[i]
		if p.Seq == 17 && p.Dir == tracefmt.DirIn {
			p.RTT = int64(truth.RoundTrip(s1)) / 2
		}
	}
	res, err := Distill(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrections != 1 {
		t.Fatalf("corrections = %d, want 1", res.Corrections)
	}
	var corrected *Estimate
	for i := range res.Estimates {
		if res.Estimates[i].Corrected {
			corrected = &res.Estimates[i]
		}
	}
	if corrected == nil {
		t.Fatal("no corrected estimate recorded")
	}
	// Correction reuses previous Vb/Vr.
	if corrected.Params.Vb != truth.Vb && math.Abs(float64(corrected.Params.Vb-truth.Vb)) > 50 {
		t.Fatalf("corrected Vb = %v", corrected.Params.Vb)
	}
}

func TestCorrectionDoesNotCascade(t *testing.T) {
	truth := core.DelayParams{F: 2 * time.Millisecond, Vb: 5000, Vr: 500}
	tr := synthTrace(12, func(int) core.DelayParams { return truth }, noLoss)
	// Sabotage groups 5 and 6 back to back.
	for i := range tr.Packets {
		p := &tr.Packets[i]
		if (p.Seq == 17 || p.Seq == 20) && p.Dir == tracefmt.DirIn {
			p.RTT = int64(time.Millisecond)
		}
	}
	res, err := Distill(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrections != 2 {
		t.Fatalf("corrections = %d, want 2", res.Corrections)
	}
	// Both corrections must be based on the last RAW estimate (group 4),
	// not on each other: they reuse truth's Vb, not a corrupted one.
	for _, e := range res.Estimates {
		if e.Corrected && math.Abs(float64(e.Params.Vb-truth.Vb)) > 50 {
			t.Fatalf("cascaded correction: Vb = %v", e.Params.Vb)
		}
	}
}

func TestIncompleteTripletSkipped(t *testing.T) {
	truth := core.DelayParams{F: 2 * time.Millisecond, Vb: 5000, Vr: 500}
	tr := synthTrace(10, func(int) core.DelayParams { return truth }, func(seq uint16) bool {
		return seq == 8 // lose one large reply in group 3
	})
	res, err := Distill(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TripletsTotal != 10 || res.TripletsComplete != 9 {
		t.Fatalf("triplets = %d/%d, want 9/10", res.TripletsComplete, res.TripletsTotal)
	}
}

func TestEmptyTraceErrors(t *testing.T) {
	if _, err := Distill(&tracefmt.Trace{}, DefaultConfig()); err != ErrNoWorkload {
		t.Fatalf("err = %v, want ErrNoWorkload", err)
	}
}

func TestAllRepliesLostErrors(t *testing.T) {
	truth := core.DelayParams{F: time.Millisecond, Vb: 1000, Vr: 100}
	tr := synthTrace(5, func(int) core.DelayParams { return truth }, func(uint16) bool { return true })
	if _, err := Distill(tr, DefaultConfig()); err != ErrNoEstimates {
		t.Fatalf("err = %v, want ErrNoEstimates", err)
	}
}

func TestQuietWindowHoldsPrevious(t *testing.T) {
	truth := core.DelayParams{F: 2 * time.Millisecond, Vb: 5000, Vr: 500}
	tr := synthTrace(6, func(int) core.DelayParams { return truth }, noLoss)
	// Append one final echo far in the future so the trace spans a gap.
	tr.Packets = append(tr.Packets, tracefmt.PacketRecord{
		At: int64(30 * time.Second), Dir: tracefmt.DirOut, Size: s1,
		Protocol: packet.ProtoICMP, ICMPType: packet.ICMPEcho, ID: 1, Seq: 1000, RTT: -1,
	})
	res, err := Distill(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gap := res.Replay.At(20*time.Second, false)
	if math.Abs(float64(gap.Vb-truth.Vb)) > 100 {
		t.Fatalf("gap tuple should hold last params, Vb = %v", gap.Vb)
	}
}

func TestDescribe(t *testing.T) {
	truth := core.DelayParams{F: time.Millisecond, Vb: 1000, Vr: 100}
	tr := synthTrace(3, func(int) core.DelayParams { return truth }, noLoss)
	res, err := Distill(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Describe() == "" {
		t.Fatal("Describe should produce a summary")
	}
}

// End-to-end: collect over the simulated Porter wireless scenario and check
// the distilled parameters land in the profile's authored bands.
func TestDistillLiveWirelessTrace(t *testing.T) {
	s := sim.New(17)
	tb := scenario.BuildWireless(s, scenario.Porter)
	pinger.Start(s, tb.Laptop, scenario.ServerIP, 60*time.Second)
	tr, err := capture.Collect(s, tb.Laptop.NIC(0), 1<<16, 60*time.Second, "porter")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Distill(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TripletsComplete < 30 {
		t.Fatalf("complete triplets = %d, want most of 60", res.TripletsComplete)
	}
	// Duration-weighted mean bottleneck bandwidth should land in WaveLAN
	// territory (~0.9-1.7 Mb/s given Porter's authored bands).
	bw := res.Replay.MeanVb().BitsPerSec()
	if bw < 0.7e6 || bw > 2.2e6 {
		t.Fatalf("mean bottleneck bandwidth = %.2f Mb/s, want ≈1-2", bw/1e6)
	}
	// Latency should be milliseconds, not microseconds or seconds.
	var fSum time.Duration
	for _, tu := range res.Replay {
		fSum += tu.F
	}
	fMean := fSum / time.Duration(len(res.Replay))
	if fMean < 200*time.Microsecond || fMean > 80*time.Millisecond {
		t.Fatalf("mean F = %v, want low milliseconds", fMean)
	}
	if err := res.Replay.Validate(); err != nil {
		t.Fatal(err)
	}
}
