// Package analysis extracts design insights from collected traces — the
// Section 6 application ("Analyses of traces can offer broad design
// insights for mobile systems and help in choosing system parameter
// values"). Given a tracefmt trace it reports round-trip-time statistics,
// outage structure (runs of consecutive unanswered probes, the quantity an
// adaptive system's disconnection handling must be sized for), and the
// correlation between device-reported signal level and probe success.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"tracemod/internal/packet"
	"tracemod/internal/stats"
	"tracemod/internal/tracefmt"
)

// Outage is a maximal run of consecutive unanswered echo probes.
type Outage struct {
	// Start is when the first unanswered probe was sent.
	Start time.Duration
	// Probes is the number of consecutive unanswered probes.
	Probes int
	// Span is the time from the first unanswered probe to the next
	// answered one (or the trace end).
	Span time.Duration
}

// Report is the full analysis of one collected trace.
type Report struct {
	Comment string

	// Workload accounting.
	EchoesSent    int
	RepliesSeen   int
	AnswerRate    float64
	DeviceSamples int
	LostRecords   int

	// Round-trip times (milliseconds).
	RTT    stats.Summary
	RTTp50 float64
	RTTp90 float64
	RTTp99 float64

	// Outage structure.
	Outages       []Outage
	LongestOutage time.Duration

	// Signal statistics and the signal/answer-rate relationship:
	// correlation between the signal level around each probe and whether
	// the probe was answered (point-biserial). Near zero when loss is
	// signal-independent (Chatterbox); strongly positive when outages
	// track dead zones (Wean).
	Signal          stats.Summary
	SignalLossCorr  float64
	SignalLossValid bool
}

// Analyze computes a Report.
func Analyze(tr *tracefmt.Trace) *Report {
	r := &Report{Comment: tr.Header.Comment, LostRecords: tr.TotalLost()}

	var probes []timedProbe
	answered := map[uint16]bool{}
	var rtts []float64

	for _, p := range tr.Packets {
		if p.Protocol != packet.ProtoICMP {
			continue
		}
		switch {
		case p.Dir == tracefmt.DirIn && p.ICMPType == packet.ICMPEchoReply:
			r.RepliesSeen++
			answered[p.Seq] = true
			if p.RTT > 0 {
				rtts = append(rtts, float64(p.RTT)/1e6)
			}
		}
	}
	start := tr.Header.Start
	if len(tr.Packets) > 0 {
		start = tr.Packets[0].At
	}
	for _, p := range tr.Packets {
		if p.Dir == tracefmt.DirOut && p.Protocol == packet.ProtoICMP && p.ICMPType == packet.ICMPEcho {
			r.EchoesSent++
			probes = append(probes, timedProbe{
				at:       time.Duration(p.At - start),
				answered: answered[p.Seq],
			})
		}
	}
	if r.EchoesSent > 0 {
		r.AnswerRate = float64(r.RepliesSeen) / float64(r.EchoesSent)
	}
	r.DeviceSamples = len(tr.Devices)

	r.RTT = stats.Summarize(rtts)
	r.RTTp50 = stats.Percentile(rtts, 50)
	r.RTTp90 = stats.Percentile(rtts, 90)
	r.RTTp99 = stats.Percentile(rtts, 99)

	// Outage runs.
	runStart := -1
	for i, p := range probes {
		if !p.answered {
			if runStart < 0 {
				runStart = i
			}
			continue
		}
		if runStart >= 0 {
			r.addOutage(probes[runStart].at, i-runStart, p.at-probes[runStart].at)
			runStart = -1
		}
	}
	if runStart >= 0 {
		last := probes[len(probes)-1]
		r.addOutage(probes[runStart].at, len(probes)-runStart, last.at-probes[runStart].at)
	}

	// Signal statistics and signal/answer correlation: pair each probe
	// with the nearest device sample.
	var sig []float64
	for _, d := range tr.Devices {
		sig = append(sig, float64(d.Signal))
	}
	r.Signal = stats.Summarize(sig)
	r.SignalLossCorr, r.SignalLossValid = signalAnswerCorrelation(tr, probes, start)
	return r
}

func (r *Report) addOutage(at time.Duration, probes int, span time.Duration) {
	r.Outages = append(r.Outages, Outage{Start: at, Probes: probes, Span: span})
	if span > r.LongestOutage {
		r.LongestOutage = span
	}
}

type timedProbe struct {
	at       time.Duration
	answered bool
}

// signalAnswerCorrelation computes the point-biserial correlation between
// the signal level nearest each probe and the probe's success.
func signalAnswerCorrelation(tr *tracefmt.Trace, probes []timedProbe, start int64) (float64, bool) {
	if len(tr.Devices) == 0 || len(probes) < 3 {
		return 0, false
	}
	// Device samples sorted by time (they are recorded in order).
	devAt := make([]time.Duration, len(tr.Devices))
	for i, d := range tr.Devices {
		devAt[i] = time.Duration(d.At - start)
	}
	nearestSignal := func(at time.Duration) float64 {
		i := sort.Search(len(devAt), func(i int) bool { return devAt[i] >= at })
		if i == 0 {
			return float64(tr.Devices[0].Signal)
		}
		if i >= len(devAt) {
			return float64(tr.Devices[len(devAt)-1].Signal)
		}
		if devAt[i]-at < at-devAt[i-1] {
			return float64(tr.Devices[i].Signal)
		}
		return float64(tr.Devices[i-1].Signal)
	}

	var xs, ys []float64
	for _, p := range probes {
		xs = append(xs, nearestSignal(p.at))
		if p.answered {
			ys = append(ys, 1)
		} else {
			ys = append(ys, 0)
		}
	}
	return pearson(xs, ys)
}

// pearson computes the correlation coefficient, reporting false when
// either series is constant.
func pearson(xs, ys []float64) (float64, bool) {
	n := float64(len(xs))
	if n < 3 {
		return 0, false
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, false
	}
	return sxy / math.Sqrt(sxx*syy), true
}

// Format renders the report for terminal output.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace analysis: %q\n", r.Comment)
	fmt.Fprintf(&b, "workload: %d echoes sent, %d answered (%.1f%%), %d device samples, %d lost records\n",
		r.EchoesSent, r.RepliesSeen, 100*r.AnswerRate, r.DeviceSamples, r.LostRecords)
	fmt.Fprintf(&b, "rtt: mean %.2fms (σ %.2f)  p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
		r.RTT.Mean, r.RTT.Std, r.RTTp50, r.RTTp90, r.RTTp99, r.RTT.Max)
	fmt.Fprintf(&b, "signal: mean %.1f (σ %.1f), range [%.1f, %.1f]\n",
		r.Signal.Mean, r.Signal.Std, r.Signal.Min, r.Signal.Max)
	if r.SignalLossValid {
		fmt.Fprintf(&b, "signal/answer correlation: %+.3f", r.SignalLossCorr)
		switch {
		case r.SignalLossCorr > 0.3:
			b.WriteString("  (losses track dead zones)\n")
		case r.SignalLossCorr < -0.1:
			b.WriteString("  (anomalous: losses at high signal)\n")
		default:
			b.WriteString("  (losses largely signal-independent: contention or noise)\n")
		}
	}
	fmt.Fprintf(&b, "outages: %d runs, longest %v\n", len(r.Outages), r.LongestOutage.Round(time.Millisecond))
	// Top outages by span.
	sorted := append([]Outage(nil), r.Outages...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Span > sorted[j].Span })
	for i, o := range sorted {
		if i == 5 {
			break
		}
		fmt.Fprintf(&b, "  at %7.1fs: %3d probes unanswered over %v\n",
			o.Start.Seconds(), o.Probes, o.Span.Round(time.Millisecond))
	}
	return b.String()
}
