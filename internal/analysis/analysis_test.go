package analysis

import (
	"math"
	"strings"
	"testing"
	"time"

	"tracemod/internal/capture"
	"tracemod/internal/packet"
	"tracemod/internal/pinger"
	"tracemod/internal/scenario"
	"tracemod/internal/sim"
	"tracemod/internal/tracefmt"
)

// synth builds a trace of n probes, with answered[i] deciding probe i's
// fate and signal sampled per second.
func synth(answered []bool, signal func(sec int) float32) *tracefmt.Trace {
	tr := &tracefmt.Trace{Header: tracefmt.Header{Comment: "synthetic"}}
	for i, ok := range answered {
		at := int64(i) * int64(time.Second)
		tr.Packets = append(tr.Packets, tracefmt.PacketRecord{
			At: at, Dir: tracefmt.DirOut, Size: 60, Protocol: packet.ProtoICMP,
			ICMPType: packet.ICMPEcho, Seq: uint16(i + 1), RTT: -1,
		})
		if ok {
			tr.Packets = append(tr.Packets, tracefmt.PacketRecord{
				At: at + int64(5*time.Millisecond), Dir: tracefmt.DirIn, Size: 60,
				Protocol: packet.ProtoICMP, ICMPType: packet.ICMPEchoReply,
				Seq: uint16(i + 1), RTT: int64(5 * time.Millisecond),
			})
		}
		tr.Devices = append(tr.Devices, tracefmt.DeviceRecord{At: at, Signal: signal(i)})
	}
	return tr
}

func TestAnalyzeCounts(t *testing.T) {
	answered := []bool{true, true, false, false, false, true, true}
	r := Analyze(synth(answered, func(int) float32 { return 15 }))
	if r.EchoesSent != 7 || r.RepliesSeen != 4 {
		t.Fatalf("sent/answered = %d/%d", r.EchoesSent, r.RepliesSeen)
	}
	if math.Abs(r.AnswerRate-4.0/7.0) > 1e-9 {
		t.Fatalf("answer rate = %v", r.AnswerRate)
	}
	if r.RTT.Mean != 5 {
		t.Fatalf("rtt mean = %v ms", r.RTT.Mean)
	}
}

func TestOutageRuns(t *testing.T) {
	answered := []bool{true, false, false, false, true, false, true, true}
	r := Analyze(synth(answered, func(int) float32 { return 15 }))
	if len(r.Outages) != 2 {
		t.Fatalf("outages = %+v", r.Outages)
	}
	if r.Outages[0].Probes != 3 || r.Outages[0].Start != time.Second {
		t.Fatalf("first outage = %+v", r.Outages[0])
	}
	// Span from probe at 1s to recovery probe at 4s.
	if r.Outages[0].Span != 3*time.Second {
		t.Fatalf("span = %v", r.Outages[0].Span)
	}
	if r.Outages[1].Probes != 1 {
		t.Fatalf("second outage = %+v", r.Outages[1])
	}
	if r.LongestOutage != 3*time.Second {
		t.Fatalf("longest = %v", r.LongestOutage)
	}
}

func TestTrailingOutage(t *testing.T) {
	answered := []bool{true, false, false}
	r := Analyze(synth(answered, func(int) float32 { return 15 }))
	if len(r.Outages) != 1 || r.Outages[0].Probes != 2 {
		t.Fatalf("outages = %+v", r.Outages)
	}
}

func TestSignalLossCorrelation(t *testing.T) {
	// Losses exactly when signal collapses: strong positive correlation.
	answered := make([]bool, 40)
	sig := func(sec int) float32 {
		if sec >= 15 && sec < 25 {
			return 2
		}
		return 18
	}
	for i := range answered {
		answered[i] = !(i >= 15 && i < 25)
	}
	r := Analyze(synth(answered, sig))
	if !r.SignalLossValid {
		t.Fatal("correlation should be computable")
	}
	if r.SignalLossCorr < 0.9 {
		t.Fatalf("corr = %v, want ≈1 for perfectly aligned outage", r.SignalLossCorr)
	}

	// Losses independent of a constant signal: correlation undefined.
	r2 := Analyze(synth([]bool{true, false, true, false, true}, func(int) float32 { return 18 }))
	if r2.SignalLossValid {
		t.Fatal("constant signal has no defined correlation")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if c, ok := pearson(xs, []float64{2, 4, 6, 8}); !ok || math.Abs(c-1) > 1e-12 {
		t.Fatalf("perfect corr = %v,%v", c, ok)
	}
	if c, ok := pearson(xs, []float64{8, 6, 4, 2}); !ok || math.Abs(c+1) > 1e-12 {
		t.Fatalf("perfect anticorr = %v,%v", c, ok)
	}
	if _, ok := pearson(xs[:2], []float64{1, 2}); ok {
		t.Fatal("too few points must be invalid")
	}
	if _, ok := pearson([]float64{5, 5, 5}, []float64{1, 2, 3}); ok {
		t.Fatal("constant series must be invalid")
	}
}

func TestFormatRenders(t *testing.T) {
	r := Analyze(synth([]bool{true, false, true}, func(int) float32 { return 12 }))
	out := r.Format()
	for _, want := range []string{"trace analysis", "rtt:", "signal:", "outages:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAnalyzeWeanShowsElevator(t *testing.T) {
	// End-to-end: the Wean trace's biggest outage must sit inside the
	// elevator window (90-115s), and losses must correlate with signal.
	s := sim.New(17)
	tb := scenario.BuildWireless(s, scenario.Wean)
	dur := scenario.Wean.Profile.Duration()
	pinger.Start(s, tb.Laptop, scenario.ServerIP, dur)
	tr, err := capture.Collect(s, tb.Laptop.NIC(0), 1<<16, dur, "wean")
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(tr)
	if r.LongestOutage < 2*time.Second {
		t.Fatalf("longest outage %v; the elevator should dominate", r.LongestOutage)
	}
	var longest Outage
	for _, o := range r.Outages {
		if o.Span == r.LongestOutage {
			longest = o
		}
	}
	if longest.Start < 85*time.Second || longest.Start > 118*time.Second {
		t.Fatalf("longest outage at %v, want inside the elevator ride", longest.Start)
	}
	if !r.SignalLossValid || r.SignalLossCorr < 0.2 {
		t.Fatalf("signal/answer corr = %v (valid=%v), want clearly positive in Wean",
			r.SignalLossCorr, r.SignalLossValid)
	}
}

func TestAnalyzeChatterboxSignalIndependent(t *testing.T) {
	s := sim.New(23)
	tb := scenario.BuildWireless(s, scenario.Chatterbox)
	dur := 120 * time.Second
	pinger.Start(s, tb.Laptop, scenario.ServerIP, dur)
	tr, err := capture.Collect(s, tb.Laptop.NIC(0), 1<<16, dur, "chatterbox")
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(tr)
	// Signal is uniformly high; losses come from contention and the loss
	// process, not dead zones.
	if r.SignalLossValid && r.SignalLossCorr > 0.3 {
		t.Fatalf("corr = %v, want weak for the contention scenario", r.SignalLossCorr)
	}
	if r.Signal.Mean < 15 {
		t.Fatalf("signal mean = %v, want ≈18", r.Signal.Mean)
	}
}
