package faults

import (
	"errors"
	"strings"
	"testing"
	"time"

	"tracemod/internal/obs"
)

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	p := inj.Point("anything")
	if p != nil {
		t.Fatal("nil injector handed out a non-nil point")
	}
	if p.Fire() {
		t.Fatal("nil point fired")
	}
	if err := p.Err(); err != nil {
		t.Fatalf("nil point errored: %v", err)
	}
	p.Stall() // must not panic
	inj.Set("anything", Config{Rate: 1})
	inj.Reset()
	if inj.Snapshot() != nil || inj.Names() != nil {
		t.Fatal("nil injector reported state")
	}
}

func TestDisarmedPointNeverFires(t *testing.T) {
	inj := New(Options{Seed: 1})
	p := inj.Point("quiet")
	for i := 0; i < 1000; i++ {
		if p.Fire() {
			t.Fatal("disarmed point fired")
		}
	}
	if st := inj.Snapshot(); st[0].Evals != 0 {
		t.Fatalf("disarmed point recorded %d evals", st[0].Evals)
	}
}

func TestFireRateAndDeterminism(t *testing.T) {
	sequence := func(seed int64) []bool {
		inj := New(Options{Seed: seed})
		inj.Set("p", Config{Rate: 0.3})
		p := inj.Point("p")
		out := make([]bool, 2000)
		for i := range out {
			out[i] = p.Fire()
		}
		return out
	}
	a, b := sequence(42), sequence(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different fire sequences")
		}
		if a[i] {
			fired++
		}
	}
	if fired < 400 || fired > 800 {
		t.Fatalf("rate 0.3 fired %d of 2000", fired)
	}
	c := sequence(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestErrWrapsSentinel(t *testing.T) {
	inj := New(Options{})
	inj.Set("always", Config{Rate: 1})
	err := inj.Point("always").Err()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "always") {
		t.Fatalf("err %q does not name the point", err)
	}
}

func TestStallSleeps(t *testing.T) {
	inj := New(Options{})
	inj.Set("slow", Config{Rate: 1, Delay: 20 * time.Millisecond})
	start := time.Now()
	inj.Point("slow").Stall()
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("stall slept only %v", d)
	}
}

func TestResetDisarms(t *testing.T) {
	inj := New(Options{})
	inj.Set("a", Config{Rate: 1})
	inj.Set("b", Config{Rate: 1, Delay: time.Second})
	inj.Reset()
	for _, st := range inj.Snapshot() {
		if st.Rate != 0 || st.Delay != 0 {
			t.Fatalf("point %s still armed after Reset: %+v", st.Name, st)
		}
	}
	if inj.Point("a").Fire() {
		t.Fatal("reset point fired")
	}
}

func TestMetricsCountFires(t *testing.T) {
	reg := obs.NewRegistry()
	inj := New(Options{Metrics: reg})
	inj.Set("metered", Config{Rate: 1})
	inj.Point("metered").Fire()
	var sb strings.Builder
	_ = reg.WritePrometheus(&sb)
	for _, want := range []string{
		`tracemod_faults_evals_total{point="metered"} 1`,
		`tracemod_faults_fired_total{point="metered"} 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("export missing %q", want)
		}
	}
}

func TestBackoffRetriesThenSucceeds(t *testing.T) {
	calls := 0
	err := Backoff{Attempts: 4, Base: time.Millisecond, Max: 2 * time.Millisecond}.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestBackoffExhaustsAttempts(t *testing.T) {
	calls := 0
	sentinel := errors.New("still down")
	err := Backoff{Attempts: 3, Base: time.Millisecond, Max: time.Millisecond}.Do(func() error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) || calls != 3 {
		t.Fatalf("err=%v calls=%d, want sentinel after 3", err, calls)
	}
}

func TestBackoffStopsOnPermanent(t *testing.T) {
	calls := 0
	sentinel := errors.New("no such file")
	err := Backoff{Attempts: 5, Base: time.Millisecond}.Do(func() error {
		calls++
		return Permanent(sentinel)
	})
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want unwrapped sentinel", err)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must stay nil")
	}
}
