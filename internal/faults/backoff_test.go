package faults

import (
	"testing"
	"time"
)

func TestWaitSleepsAndCompletes(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond}
	start := time.Now()
	if !b.Wait(0, nil) {
		t.Fatal("Wait with nil cancel must complete")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Wait slept %v for a millisecond policy", elapsed)
	}
}

func TestWaitCancelReturnsPromptly(t *testing.T) {
	b := Backoff{Base: time.Hour, Max: time.Hour}
	cancel := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(cancel)
	}()
	start := time.Now()
	if b.Wait(0, cancel) {
		t.Fatal("cancelled Wait must report false")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled Wait took %v to return", elapsed)
	}
}

func TestWaitLargeAttemptDoesNotOverflow(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
	// A shift by attempt counts in the thousands must cap, not overflow
	// into a negative (or eternal) sleep.
	done := make(chan bool, 1)
	go func() { done <- b.Wait(100000, nil) }()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("Wait returned false with nil cancel")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Wait hung on a large attempt index")
	}
}

func TestWaitDelayCapsAtMax(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Max: 20 * time.Millisecond}
	start := time.Now()
	if !b.Wait(20, nil) { // 1ms << 20 is ~17min before the cap
		t.Fatal("Wait must complete")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Wait ignored Max: slept %v", elapsed)
	}
}
