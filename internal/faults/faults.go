// Package faults is the deterministic fault-injection layer of the
// emulation daemon. The paper's whole argument is repeatable behaviour
// under hostile network conditions; this package extends that discipline
// to the daemon itself: every failure mode the farm defends against —
// corrupt trace parses, stalled wheel ticks, relay socket errors, store
// eviction storms, slow or failing control-plane calls, panicking session
// callbacks — is a named Point that can be armed at a probability, with a
// seeded per-point RNG so a chaos run replays exactly.
//
// Subsystems hold *Point handles obtained from an *Injector and consult
// them at their fault sites (Fire / Err / Stall). Like internal/obs, every
// method is nil-safe: a nil Injector hands out nil Points whose methods
// are single-branch no-ops, so production binaries built without an
// injector pay one predictable pointer test per site and nothing else.
//
// The package also provides Backoff, the retry-with-exponential-backoff
// and deterministic-jitter policy the daemon's defenses use (relay attach,
// trace-store loads).
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tracemod/internal/obs"
)

// ErrInjected is the sentinel wrapped by every error a Point produces, so
// defenses (and tests) can tell injected faults from organic ones with
// errors.Is.
var ErrInjected = errors.New("injected fault")

// Options parameterizes an Injector.
type Options struct {
	// Seed derives every point's private RNG stream (seed ^ fnv64(name)),
	// making a chaos scenario a pure function of (seed, configuration,
	// workload). Zero is a valid seed.
	Seed int64
	// Metrics, if non-nil, registers the injector's instruments
	// (tracemod_faults_evals_total{point}, tracemod_faults_fired_total{point}).
	Metrics *obs.Registry
}

// Injector owns a set of named fault points. All methods are safe on a nil
// receiver.
type Injector struct {
	seed int64

	mu     sync.Mutex
	points map[string]*Point

	evals, fires *obs.CounterVec
}

// New creates an injector.
func New(o Options) *Injector {
	inj := &Injector{seed: o.Seed, points: map[string]*Point{}}
	if reg := o.Metrics; reg != nil {
		inj.evals = reg.CounterVec("tracemod_faults_evals_total",
			"Fault-point evaluations (armed or not).", "point")
		inj.fires = reg.CounterVec("tracemod_faults_fired_total",
			"Fault-point evaluations that injected the fault.", "point")
	}
	return inj
}

// Point returns the named fault point, registering it (disarmed) on first
// use. Returns nil on a nil injector.
func (i *Injector) Point(name string) *Point {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if p, ok := i.points[name]; ok {
		return p
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	p := &Point{
		name:  name,
		rng:   rand.New(rand.NewSource(i.seed ^ int64(h.Sum64()))),
		evals: i.evals.With(name),
		fires: i.fires.With(name),
	}
	i.points[name] = p
	return p
}

// Names lists every registered point, sorted.
func (i *Injector) Names() []string {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	names := make([]string, 0, len(i.points))
	for name := range i.points {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Config arms (or disarms, with Rate 0) a point.
type Config struct {
	// Rate is the per-evaluation fire probability in [0, 1].
	Rate float64
	// Delay is how long Stall sleeps when the point fires (stall/skew
	// faults); ignored by Fire and Err sites.
	Delay time.Duration
}

// Set configures the named point, registering it if needed. Rates are
// clamped to [0, 1]; negative delays to 0.
func (i *Injector) Set(name string, cfg Config) {
	if i == nil {
		return
	}
	i.Point(name).set(cfg)
}

// Reset disarms every registered point (rate and delay back to zero). The
// per-point RNG streams keep their position: Reset ends a chaos scenario,
// it does not rewind it.
func (i *Injector) Reset() {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	for _, p := range i.points {
		p.set(Config{})
	}
}

// State is one point's introspection snapshot.
type State struct {
	Name  string        `json:"name"`
	Rate  float64       `json:"rate"`
	Delay time.Duration `json:"delay_ns"`
	Evals int64         `json:"evals"`
	Fired int64         `json:"fired"`
}

// Snapshot reports every registered point, sorted by name.
func (i *Injector) Snapshot() []State {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	points := make([]*Point, 0, len(i.points))
	for _, p := range i.points {
		points = append(points, p)
	}
	i.mu.Unlock()
	sort.Slice(points, func(a, b int) bool { return points[a].name < points[b].name })
	out := make([]State, len(points))
	for n, p := range points {
		out[n] = State{
			Name:  p.name,
			Rate:  math.Float64frombits(p.rate.Load()),
			Delay: time.Duration(p.delay.Load()),
			Evals: p.nEvals.Load(),
			Fired: p.nFired.Load(),
		}
	}
	return out
}

// Point is one named fault site. The zero rate (disarmed) path is a single
// atomic load; all methods are safe on a nil receiver.
type Point struct {
	name  string
	rate  atomic.Uint64 // math.Float64bits
	delay atomic.Int64  // nanoseconds

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	nEvals, nFired atomic.Int64
	evals, fires   *obs.Counter
}

func (p *Point) set(cfg Config) {
	rate := cfg.Rate
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	if cfg.Delay < 0 {
		cfg.Delay = 0
	}
	p.rate.Store(math.Float64bits(rate))
	p.delay.Store(int64(cfg.Delay))
}

// Fire evaluates the point: true with the configured probability, drawn
// from the point's seeded stream. Disarmed (or nil) points return false
// without touching the RNG, so arming one point never perturbs another's
// replayable sequence.
func (p *Point) Fire() bool {
	if p == nil {
		return false
	}
	rate := math.Float64frombits(p.rate.Load())
	if rate <= 0 {
		return false
	}
	p.nEvals.Add(1)
	p.evals.Inc()
	p.mu.Lock()
	hit := p.rng.Float64() < rate
	p.mu.Unlock()
	if hit {
		p.nFired.Add(1)
		p.fires.Inc()
	}
	return hit
}

// Err returns an injected error when the point fires, nil otherwise. The
// error wraps ErrInjected and names the point.
func (p *Point) Err() error {
	if !p.Fire() {
		return nil
	}
	return fmt.Errorf("faults: %s: %w", p.name, ErrInjected)
}

// Stall sleeps the configured delay when the point fires (tick stalls,
// slow control-plane calls). A fired point with zero delay is a no-op
// beyond the counters.
func (p *Point) Stall() {
	if !p.Fire() {
		return
	}
	if d := time.Duration(p.delay.Load()); d > 0 {
		time.Sleep(d)
	}
}

// Mark records one activation at the point unconditionally — no RNG, no
// probability, works disarmed. Defense-side transitions (a brownout
// level change, an idle-stream seal) use it so their activations land in
// the same ledger chaos scenarios read: the point's Snapshot counts and
// the tracemod_faults_*_total{point} series.
func (p *Point) Mark() {
	if p == nil {
		return
	}
	p.nEvals.Add(1)
	p.evals.Inc()
	p.nFired.Add(1)
	p.fires.Inc()
}

// Delay reports the configured stall duration.
func (p *Point) Delay() time.Duration {
	if p == nil {
		return 0
	}
	return time.Duration(p.delay.Load())
}

// Fired reports how many times the point has injected its fault.
func (p *Point) Fired() int64 {
	if p == nil {
		return 0
	}
	return p.nFired.Load()
}
