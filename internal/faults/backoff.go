// Backoff: the retry policy the daemon's defenses share. Exponential with
// full deterministic jitter — sleep_i ∈ [base·2^i/2, base·2^i), drawn from
// a seeded stream — so a chaos run's retry timing replays exactly like
// everything else in this package.
package faults

import (
	"errors"
	"math/rand"
	"time"
)

// Default policy values, applied by Do for zero fields.
const (
	DefaultRetryAttempts = 3
	DefaultRetryBase     = 5 * time.Millisecond
	DefaultRetryMax      = 250 * time.Millisecond
)

// Backoff is a retry policy. The zero value retries DefaultRetryAttempts
// times from DefaultRetryBase.
type Backoff struct {
	// Attempts is the total number of tries (not re-tries); values < 1
	// mean DefaultRetryAttempts.
	Attempts int
	// Base is the first sleep; doubles each retry up to Max.
	Base time.Duration
	// Max caps a single sleep.
	Max time.Duration
	// Seed drives the jitter stream (zero is a valid seed).
	Seed int64
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Backoff.Do returns it immediately instead of
// retrying (a missing trace file is permanent; an injected read fault is
// not). A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Wait sleeps this policy's jittered delay for the given retry attempt
// (0-based), returning early with false when cancel closes. Unlike Do,
// Wait leaves the retry loop to the caller: long-lived goroutines (the
// livewire pumps) retry indefinitely and need the cancellation path Do
// lacks. A nil cancel channel never fires, so Wait then always sleeps
// the full delay. The attempt's exponent is capped so large attempt
// counts cannot overflow the shift; the delay is capped at Max as usual.
func (b Backoff) Wait(attempt int, cancel <-chan struct{}) bool {
	base := b.Base
	if base <= 0 {
		base = DefaultRetryBase
	}
	max := b.Max
	if max <= 0 {
		max = DefaultRetryMax
	}
	if attempt < 0 {
		attempt = 0
	}
	if attempt > 20 {
		attempt = 20
	}
	sleep := base << attempt
	if sleep > max || sleep <= 0 {
		sleep = max
	}
	rng := rand.New(rand.NewSource(b.Seed + int64(attempt)))
	sleep = sleep/2 + time.Duration(rng.Int63n(int64(sleep/2)+1))
	t := time.NewTimer(sleep)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}

// Do runs fn until it returns nil, a Permanent error, or the attempt
// budget is spent; it returns the last error (unwrapped from Permanent).
func (b Backoff) Do(fn func() error) error {
	attempts := b.Attempts
	if attempts < 1 {
		attempts = DefaultRetryAttempts
	}
	base := b.Base
	if base <= 0 {
		base = DefaultRetryBase
	}
	max := b.Max
	if max <= 0 {
		max = DefaultRetryMax
	}
	var rng *rand.Rand // created lazily: the no-retry fast path allocates nothing
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if i == attempts-1 {
			break
		}
		sleep := base << i
		if sleep > max {
			sleep = max
		}
		if rng == nil {
			rng = rand.New(rand.NewSource(b.Seed))
		}
		// Full jitter over the upper half keeps retries spread without ever
		// collapsing the wait to ~0.
		sleep = sleep/2 + time.Duration(rng.Int63n(int64(sleep/2)+1))
		time.Sleep(sleep)
	}
	return err
}
