// Backoff: the retry policy the daemon's defenses share. Exponential with
// full deterministic jitter — sleep_i ∈ [base·2^i/2, base·2^i), drawn from
// a seeded stream — so a chaos run's retry timing replays exactly like
// everything else in this package.
package faults

import (
	"errors"
	"math/rand"
	"time"
)

// Default policy values, applied by Do for zero fields.
const (
	DefaultRetryAttempts = 3
	DefaultRetryBase     = 5 * time.Millisecond
	DefaultRetryMax      = 250 * time.Millisecond
)

// Backoff is a retry policy. The zero value retries DefaultRetryAttempts
// times from DefaultRetryBase.
type Backoff struct {
	// Attempts is the total number of tries (not re-tries); values < 1
	// mean DefaultRetryAttempts.
	Attempts int
	// Base is the first sleep; doubles each retry up to Max.
	Base time.Duration
	// Max caps a single sleep.
	Max time.Duration
	// Seed drives the jitter stream (zero is a valid seed).
	Seed int64
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Backoff.Do returns it immediately instead of
// retrying (a missing trace file is permanent; an injected read fault is
// not). A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Do runs fn until it returns nil, a Permanent error, or the attempt
// budget is spent; it returns the last error (unwrapped from Permanent).
func (b Backoff) Do(fn func() error) error {
	attempts := b.Attempts
	if attempts < 1 {
		attempts = DefaultRetryAttempts
	}
	base := b.Base
	if base <= 0 {
		base = DefaultRetryBase
	}
	max := b.Max
	if max <= 0 {
		max = DefaultRetryMax
	}
	var rng *rand.Rand // created lazily: the no-retry fast path allocates nothing
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if i == attempts-1 {
			break
		}
		sleep := base << i
		if sleep > max {
			sleep = max
		}
		if rng == nil {
			rng = rand.New(rand.NewSource(b.Seed))
		}
		// Full jitter over the upper half keeps retries spread without ever
		// collapsing the wait to ~0.
		sleep = sleep/2 + time.Duration(rng.Int63n(int64(sleep/2)+1))
		time.Sleep(sleep)
	}
	return err
}
