// Package packet implements the wire formats carried through the emulated
// network: Ethernet, IPv4, ICMP (echo/echoreply), UDP, and TCP segments.
//
// The design follows the gopacket idiom of typed, zero-copy header views
// over a frame's bytes: each header type is a named []byte whose accessor
// methods read fields in place, paired with a registry of LayerTypes and a
// Decode walk that classifies a raw frame. Serialization goes through
// explicit Put/Marshal helpers so byte layouts live in exactly one place.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// LayerType identifies a protocol layer in the registry.
type LayerType int

// Known layer types.
const (
	LayerTypeInvalid LayerType = iota
	LayerTypeEthernet
	LayerTypeIPv4
	LayerTypeICMPv4
	LayerTypeUDP
	LayerTypeTCP
	LayerTypePayload
)

var layerTypeNames = map[LayerType]string{
	LayerTypeInvalid:  "Invalid",
	LayerTypeEthernet: "Ethernet",
	LayerTypeIPv4:     "IPv4",
	LayerTypeICMPv4:   "ICMPv4",
	LayerTypeUDP:      "UDP",
	LayerTypeTCP:      "TCP",
	LayerTypePayload:  "Payload",
}

func (t LayerType) String() string {
	if n, ok := layerTypeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("LayerType(%d)", int(t))
}

// Errors returned by decoders.
var (
	ErrTruncated  = errors.New("packet: truncated header")
	ErrBadVersion = errors.New("packet: bad IP version")
	ErrBadLength  = errors.New("packet: bad length field")
)

// IP protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// EtherType values.
const EtherTypeIPv4 = 0x0800

// Sizes of the fixed headers (no options are used in this system).
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20
	ICMPHeaderLen     = 8
	UDPHeaderLen      = 8
	TCPHeaderLen      = 20

	// MTU is the Ethernet payload limit used throughout the emulation.
	MTU = 1500
)

// HWAddr is a 48-bit link-layer address.
type HWAddr [6]byte

func (a HWAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// IPAddr is an IPv4 address in host-order uint32 form.
type IPAddr uint32

// IP4 builds an address from dotted-quad components.
func IP4(a, b, c, d byte) IPAddr {
	return IPAddr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

func (ip IPAddr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Checksum computes the RFC 1071 internet checksum over data with an
// initial partial sum (pass 0 unless folding in a pseudo-header).
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the partial sum of the IPv4 pseudo-header used
// by UDP and TCP checksums.
func pseudoHeaderSum(src, dst IPAddr, proto uint8, length int) uint32 {
	var sum uint32
	sum += uint32(src >> 16)
	sum += uint32(src & 0xffff)
	sum += uint32(dst >> 16)
	sum += uint32(dst & 0xffff)
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// Ethernet is a zero-copy view over an Ethernet frame.
type Ethernet []byte

// Valid reports whether the frame holds a complete Ethernet header.
func (e Ethernet) Valid() bool { return len(e) >= EthernetHeaderLen }

// Dst returns the destination hardware address.
func (e Ethernet) Dst() HWAddr { var a HWAddr; copy(a[:], e[0:6]); return a }

// Src returns the source hardware address.
func (e Ethernet) Src() HWAddr { var a HWAddr; copy(a[:], e[6:12]); return a }

// EtherType returns the payload protocol identifier.
func (e Ethernet) EtherType() uint16 { return binary.BigEndian.Uint16(e[12:14]) }

// Payload returns the frame body after the Ethernet header.
func (e Ethernet) Payload() []byte { return e[EthernetHeaderLen:] }

// SetDst writes the destination address.
func (e Ethernet) SetDst(a HWAddr) { copy(e[0:6], a[:]) }

// SetSrc writes the source address.
func (e Ethernet) SetSrc(a HWAddr) { copy(e[6:12], a[:]) }

// SetEtherType writes the payload protocol identifier.
func (e Ethernet) SetEtherType(t uint16) { binary.BigEndian.PutUint16(e[12:14], t) }

// IPv4 is a zero-copy view over an IPv4 header and payload.
type IPv4 []byte

// Valid reports whether the view holds a complete, version-4 header whose
// total length fits the buffer.
func (p IPv4) Valid() error {
	if len(p) < IPv4HeaderLen {
		return ErrTruncated
	}
	if p.Version() != 4 || p.IHL() < 5 {
		return ErrBadVersion
	}
	if int(p.TotalLen()) > len(p) || int(p.TotalLen()) < int(p.IHL())*4 {
		return ErrBadLength
	}
	return nil
}

// Version returns the IP version nibble.
func (p IPv4) Version() uint8 { return p[0] >> 4 }

// IHL returns the header length in 32-bit words.
func (p IPv4) IHL() uint8 { return p[0] & 0x0f }

// TOS returns the type-of-service byte.
func (p IPv4) TOS() uint8 { return p[1] }

// TotalLen returns the datagram's total length in bytes.
func (p IPv4) TotalLen() uint16 { return binary.BigEndian.Uint16(p[2:4]) }

// ID returns the identification field.
func (p IPv4) ID() uint16 { return binary.BigEndian.Uint16(p[4:6]) }

// TTL returns the time-to-live.
func (p IPv4) TTL() uint8 { return p[8] }

// Protocol returns the payload protocol number.
func (p IPv4) Protocol() uint8 { return p[9] }

// HeaderChecksum returns the stored header checksum.
func (p IPv4) HeaderChecksum() uint16 { return binary.BigEndian.Uint16(p[10:12]) }

// Src returns the source address.
func (p IPv4) Src() IPAddr { return IPAddr(binary.BigEndian.Uint32(p[12:16])) }

// Dst returns the destination address.
func (p IPv4) Dst() IPAddr { return IPAddr(binary.BigEndian.Uint32(p[16:20])) }

// Payload returns the transport payload (header options are not used).
func (p IPv4) Payload() []byte {
	h := int(p.IHL()) * 4
	return p[h:p.TotalLen()]
}

// SetTTL writes the time-to-live without fixing the checksum.
func (p IPv4) SetTTL(ttl uint8) { p[8] = ttl }

// SetChecksum recomputes and stores the header checksum.
func (p IPv4) SetChecksum() {
	h := int(p.IHL()) * 4
	binary.BigEndian.PutUint16(p[10:12], 0)
	binary.BigEndian.PutUint16(p[10:12], Checksum(p[:h], 0))
}

// ChecksumOK verifies the stored header checksum.
func (p IPv4) ChecksumOK() bool {
	h := int(p.IHL()) * 4
	return Checksum(p[:h], 0) == 0
}

// IPv4Fields describes an IPv4 header to serialize.
type IPv4Fields struct {
	TOS      uint8
	ID       uint16
	TTL      uint8
	Protocol uint8
	Src, Dst IPAddr
}

// PutIPv4 writes a 20-byte header followed by payload into buf, which must
// be at least IPv4HeaderLen+len(payload) bytes. It returns the datagram
// as an IPv4 view with checksum set.
func PutIPv4(buf []byte, f IPv4Fields, payload []byte) IPv4 {
	total := IPv4HeaderLen + len(payload)
	if len(buf) < total {
		panic("packet: PutIPv4 buffer too small")
	}
	b := buf[:total]
	b[0] = 4<<4 | 5
	b[1] = f.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(total))
	binary.BigEndian.PutUint16(b[4:6], f.ID)
	binary.BigEndian.PutUint16(b[6:8], 0) // flags+fragment offset
	b[8] = f.TTL
	b[9] = f.Protocol
	binary.BigEndian.PutUint32(b[12:16], uint32(f.Src))
	binary.BigEndian.PutUint32(b[16:20], uint32(f.Dst))
	copy(b[IPv4HeaderLen:], payload)
	IPv4(b).SetChecksum()
	return IPv4(b)
}

// MarshalIPv4 allocates and serializes an IPv4 datagram.
func MarshalIPv4(f IPv4Fields, payload []byte) IPv4 {
	return PutIPv4(make([]byte, IPv4HeaderLen+len(payload)), f, payload)
}

// ICMP message types used by the known workload.
const (
	ICMPEchoReply   = 0
	ICMPEcho        = 8
	ICMPUnreachable = 3
)

// ICMP is a zero-copy view over an ICMP message.
type ICMP []byte

// Valid reports whether the view holds a complete ICMP header.
func (m ICMP) Valid() bool { return len(m) >= ICMPHeaderLen }

// Type returns the message type.
func (m ICMP) Type() uint8 { return m[0] }

// Code returns the message code.
func (m ICMP) Code() uint8 { return m[1] }

// ID returns the echo identifier (the paper records the sender's pid here).
func (m ICMP) ID() uint16 { return binary.BigEndian.Uint16(m[4:6]) }

// Seq returns the echo sequence number.
func (m ICMP) Seq() uint16 { return binary.BigEndian.Uint16(m[6:8]) }

// Payload returns the echo data.
func (m ICMP) Payload() []byte { return m[ICMPHeaderLen:] }

// ChecksumOK verifies the message checksum.
func (m ICMP) ChecksumOK() bool { return Checksum(m, 0) == 0 }

// SentAt returns the 8-byte big-endian nanosecond timestamp the modified
// ping stores at the head of the echo payload, and whether it is present.
func (m ICMP) SentAt() (int64, bool) {
	p := m.Payload()
	if len(p) < 8 {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64(p[:8])), true
}

// ICMPFields describes an ICMP message to serialize.
type ICMPFields struct {
	Type, Code uint8
	ID, Seq    uint16
}

// MarshalICMP serializes an ICMP message with checksum set.
func MarshalICMP(f ICMPFields, payload []byte) ICMP {
	b := make([]byte, ICMPHeaderLen+len(payload))
	b[0] = f.Type
	b[1] = f.Code
	binary.BigEndian.PutUint16(b[4:6], f.ID)
	binary.BigEndian.PutUint16(b[6:8], f.Seq)
	copy(b[ICMPHeaderLen:], payload)
	binary.BigEndian.PutUint16(b[2:4], Checksum(b, 0))
	return ICMP(b)
}

// EchoPayload builds an echo payload of exactly size bytes carrying sentAt
// (virtual-clock nanoseconds) in its first 8 bytes; remaining bytes are a
// deterministic fill pattern. Size must be at least 8.
func EchoPayload(size int, sentAt int64) []byte {
	if size < 8 {
		panic("packet: echo payload must hold an 8-byte timestamp")
	}
	p := make([]byte, size)
	binary.BigEndian.PutUint64(p[:8], uint64(sentAt))
	for i := 8; i < size; i++ {
		p[i] = byte(i)
	}
	return p
}

// UDP is a zero-copy view over a UDP header and payload.
type UDP []byte

// Valid reports whether the view holds a complete header with a consistent
// length field.
func (u UDP) Valid() error {
	if len(u) < UDPHeaderLen {
		return ErrTruncated
	}
	if int(u.Length()) > len(u) || int(u.Length()) < UDPHeaderLen {
		return ErrBadLength
	}
	return nil
}

// SrcPort returns the source port.
func (u UDP) SrcPort() uint16 { return binary.BigEndian.Uint16(u[0:2]) }

// DstPort returns the destination port.
func (u UDP) DstPort() uint16 { return binary.BigEndian.Uint16(u[2:4]) }

// Length returns the UDP length field (header + payload).
func (u UDP) Length() uint16 { return binary.BigEndian.Uint16(u[4:6]) }

// Payload returns the datagram body.
func (u UDP) Payload() []byte { return u[UDPHeaderLen:u.Length()] }

// ChecksumOK verifies the checksum against the pseudo-header; a stored
// checksum of zero means "not computed" and passes.
func (u UDP) ChecksumOK(src, dst IPAddr) bool {
	if binary.BigEndian.Uint16(u[6:8]) == 0 {
		return true
	}
	return Checksum(u[:u.Length()], pseudoHeaderSum(src, dst, ProtoUDP, int(u.Length()))) == 0
}

// MarshalUDP serializes a UDP datagram with checksum computed over the
// pseudo-header for src/dst.
func MarshalUDP(srcPort, dstPort uint16, src, dst IPAddr, payload []byte) UDP {
	n := UDPHeaderLen + len(payload)
	b := make([]byte, n)
	binary.BigEndian.PutUint16(b[0:2], srcPort)
	binary.BigEndian.PutUint16(b[2:4], dstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(n))
	copy(b[UDPHeaderLen:], payload)
	ck := Checksum(b, pseudoHeaderSum(src, dst, ProtoUDP, n))
	if ck == 0 {
		ck = 0xffff
	}
	binary.BigEndian.PutUint16(b[6:8], ck)
	return UDP(b)
}

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
)

// TCP is a zero-copy view over a TCP segment.
type TCP []byte

// Valid reports whether the view holds a complete header.
func (t TCP) Valid() error {
	if len(t) < TCPHeaderLen {
		return ErrTruncated
	}
	if off := int(t[12]>>4) * 4; off < TCPHeaderLen || off > len(t) {
		return ErrBadLength
	}
	return nil
}

// SrcPort returns the source port.
func (t TCP) SrcPort() uint16 { return binary.BigEndian.Uint16(t[0:2]) }

// DstPort returns the destination port.
func (t TCP) DstPort() uint16 { return binary.BigEndian.Uint16(t[2:4]) }

// Seq returns the sequence number.
func (t TCP) Seq() uint32 { return binary.BigEndian.Uint32(t[4:8]) }

// Ack returns the acknowledgement number.
func (t TCP) Ack() uint32 { return binary.BigEndian.Uint32(t[8:12]) }

// Flags returns the control bits.
func (t TCP) Flags() uint8 { return t[13] & 0x3f }

// Window returns the advertised receive window.
func (t TCP) Window() uint16 { return binary.BigEndian.Uint16(t[14:16]) }

// Payload returns the segment body.
func (t TCP) Payload() []byte { return t[int(t[12]>>4)*4:] }

// ChecksumOK verifies the segment checksum against the pseudo-header.
func (t TCP) ChecksumOK(src, dst IPAddr) bool {
	return Checksum(t, pseudoHeaderSum(src, dst, ProtoTCP, len(t))) == 0
}

// TCPFields describes a TCP segment to serialize.
type TCPFields struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
}

// MarshalTCP serializes a TCP segment with checksum computed over the
// pseudo-header for src/dst.
func MarshalTCP(f TCPFields, src, dst IPAddr, payload []byte) TCP {
	b := make([]byte, TCPHeaderLen+len(payload))
	binary.BigEndian.PutUint16(b[0:2], f.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], f.DstPort)
	binary.BigEndian.PutUint32(b[4:8], f.Seq)
	binary.BigEndian.PutUint32(b[8:12], f.Ack)
	b[12] = 5 << 4 // data offset: 5 words
	b[13] = f.Flags
	binary.BigEndian.PutUint16(b[14:16], f.Window)
	copy(b[TCPHeaderLen:], payload)
	binary.BigEndian.PutUint16(b[16:18], Checksum(b, pseudoHeaderSum(src, dst, ProtoTCP, len(b))))
	return TCP(b)
}

// Info is the classification produced by Decode: which layers are present
// and zero-copy views into each.
type Info struct {
	Layers []LayerType
	IP     IPv4
	ICMP   ICMP
	UDP    UDP
	TCP    TCP
}

// Has reports whether the decoded packet contains the given layer.
func (in *Info) Has(t LayerType) bool {
	for _, l := range in.Layers {
		if l == t {
			return true
		}
	}
	return false
}

// Decode classifies an IPv4 datagram (as carried by simnet) into its
// layers. It is zero-copy: the returned views alias b.
func Decode(b []byte) (Info, error) {
	var in Info
	ip := IPv4(b)
	if err := ip.Valid(); err != nil {
		return in, err
	}
	in.IP = ip
	in.Layers = append(in.Layers, LayerTypeIPv4)
	body := ip.Payload()
	switch ip.Protocol() {
	case ProtoICMP:
		m := ICMP(body)
		if !m.Valid() {
			return in, ErrTruncated
		}
		in.ICMP = m
		in.Layers = append(in.Layers, LayerTypeICMPv4)
	case ProtoUDP:
		u := UDP(body)
		if err := u.Valid(); err != nil {
			return in, err
		}
		in.UDP = u
		in.Layers = append(in.Layers, LayerTypeUDP)
	case ProtoTCP:
		t := TCP(body)
		if err := t.Valid(); err != nil {
			return in, err
		}
		in.TCP = t
		in.Layers = append(in.Layers, LayerTypeTCP)
	default:
		in.Layers = append(in.Layers, LayerTypePayload)
	}
	return in, nil
}
