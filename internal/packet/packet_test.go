package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

var (
	srcIP = IP4(10, 0, 0, 1)
	dstIP = IP4(10, 0, 0, 2)
)

func TestIPAddr(t *testing.T) {
	ip := IP4(192, 168, 1, 42)
	if ip.String() != "192.168.1.42" {
		t.Fatalf("String = %q", ip.String())
	}
	if IP4(0, 0, 0, 0) != 0 {
		t.Fatal("zero address should be 0")
	}
	if IP4(255, 255, 255, 255) != 0xffffffff {
		t.Fatal("broadcast should be all ones")
	}
}

func TestHWAddrString(t *testing.T) {
	a := HWAddr{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if a.String() != "de:ad:be:ef:00:01" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2 -> checksum 220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != 0x220d {
		t.Fatalf("checksum = %04x, want 220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	data := []byte{0x01, 0x02, 0x03}
	// 0102 + 0300 = 0402 -> ^ = fbfd
	if got := Checksum(data, 0); got != 0xfbfd {
		t.Fatalf("checksum = %04x", got)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	buf := make([]byte, EthernetHeaderLen+4)
	e := Ethernet(buf)
	src := HWAddr{1, 2, 3, 4, 5, 6}
	dst := HWAddr{7, 8, 9, 10, 11, 12}
	e.SetSrc(src)
	e.SetDst(dst)
	e.SetEtherType(EtherTypeIPv4)
	copy(e.Payload(), []byte{0xaa, 0xbb, 0xcc, 0xdd})
	if !e.Valid() || e.Src() != src || e.Dst() != dst || e.EtherType() != EtherTypeIPv4 {
		t.Fatal("ethernet fields did not round-trip")
	}
	if !bytes.Equal(e.Payload(), []byte{0xaa, 0xbb, 0xcc, 0xdd}) {
		t.Fatal("payload mismatch")
	}
	if Ethernet(buf[:10]).Valid() {
		t.Fatal("short frame should be invalid")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	payload := []byte("hello world")
	p := MarshalIPv4(IPv4Fields{TOS: 0x10, ID: 1234, TTL: 64, Protocol: ProtoUDP, Src: srcIP, Dst: dstIP}, payload)
	if err := p.Valid(); err != nil {
		t.Fatalf("Valid: %v", err)
	}
	if p.Version() != 4 || p.IHL() != 5 {
		t.Fatal("version/ihl wrong")
	}
	if p.TOS() != 0x10 || p.ID() != 1234 || p.TTL() != 64 || p.Protocol() != ProtoUDP {
		t.Fatal("fields wrong")
	}
	if p.Src() != srcIP || p.Dst() != dstIP {
		t.Fatal("addresses wrong")
	}
	if int(p.TotalLen()) != IPv4HeaderLen+len(payload) {
		t.Fatal("total length wrong")
	}
	if !bytes.Equal(p.Payload(), payload) {
		t.Fatal("payload mismatch")
	}
	if !p.ChecksumOK() {
		t.Fatal("checksum should verify")
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	p := MarshalIPv4(IPv4Fields{TTL: 64, Protocol: ProtoICMP, Src: srcIP, Dst: dstIP}, []byte{1, 2, 3})
	p[9] ^= 0xff
	if p.ChecksumOK() {
		t.Fatal("corrupted header should fail checksum")
	}
}

func TestIPv4SetTTLAndReChecksum(t *testing.T) {
	p := MarshalIPv4(IPv4Fields{TTL: 64, Protocol: ProtoUDP, Src: srcIP, Dst: dstIP}, nil)
	p.SetTTL(63)
	if p.ChecksumOK() {
		t.Fatal("stale checksum should fail after TTL change")
	}
	p.SetChecksum()
	if !p.ChecksumOK() || p.TTL() != 63 {
		t.Fatal("SetChecksum should restore validity")
	}
}

func TestIPv4ValidRejects(t *testing.T) {
	if err := IPv4(make([]byte, 10)).Valid(); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	p := MarshalIPv4(IPv4Fields{TTL: 1, Protocol: 0, Src: srcIP, Dst: dstIP}, nil)
	p[0] = 6 << 4
	if err := p.Valid(); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	p2 := MarshalIPv4(IPv4Fields{TTL: 1, Protocol: 0, Src: srcIP, Dst: dstIP}, nil)
	p2[2] = 0xff // total length larger than buffer
	p2[3] = 0xff
	if err := p2.Valid(); err != ErrBadLength {
		t.Fatalf("length: %v", err)
	}
}

func TestICMPRoundTrip(t *testing.T) {
	pl := EchoPayload(32, 987654321)
	m := MarshalICMP(ICMPFields{Type: ICMPEcho, ID: 777, Seq: 42}, pl)
	if !m.Valid() || m.Type() != ICMPEcho || m.Code() != 0 || m.ID() != 777 || m.Seq() != 42 {
		t.Fatal("icmp fields wrong")
	}
	if !m.ChecksumOK() {
		t.Fatal("checksum should verify")
	}
	ts, ok := m.SentAt()
	if !ok || ts != 987654321 {
		t.Fatalf("SentAt = %d,%v", ts, ok)
	}
	if len(m.Payload()) != 32 {
		t.Fatal("payload size wrong")
	}
	m[6] ^= 0x01
	if m.ChecksumOK() {
		t.Fatal("corruption should break checksum")
	}
}

func TestEchoPayloadTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size < 8")
		}
	}()
	EchoPayload(4, 0)
}

func TestICMPSentAtMissing(t *testing.T) {
	m := MarshalICMP(ICMPFields{Type: ICMPEchoReply}, []byte{1, 2, 3})
	if _, ok := m.SentAt(); ok {
		t.Fatal("short payload should have no timestamp")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte("datagram body")
	u := MarshalUDP(5000, 2049, srcIP, dstIP, payload)
	if err := u.Valid(); err != nil {
		t.Fatalf("Valid: %v", err)
	}
	if u.SrcPort() != 5000 || u.DstPort() != 2049 {
		t.Fatal("ports wrong")
	}
	if int(u.Length()) != UDPHeaderLen+len(payload) {
		t.Fatal("length wrong")
	}
	if !bytes.Equal(u.Payload(), payload) {
		t.Fatal("payload mismatch")
	}
	if !u.ChecksumOK(srcIP, dstIP) {
		t.Fatal("checksum should verify")
	}
	if u.ChecksumOK(srcIP, IP4(1, 2, 3, 4)) {
		t.Fatal("checksum should bind addresses")
	}
}

func TestUDPZeroChecksumPasses(t *testing.T) {
	u := MarshalUDP(1, 2, srcIP, dstIP, nil)
	u[6], u[7] = 0, 0
	if !u.ChecksumOK(srcIP, dstIP) {
		t.Fatal("zero checksum means unchecked")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5a}, 100)
	f := TCPFields{SrcPort: 1234, DstPort: 21, Seq: 0xdeadbeef, Ack: 0x01020304, Flags: TCPAck | TCPPsh, Window: 8760}
	seg := MarshalTCP(f, srcIP, dstIP, payload)
	if err := seg.Valid(); err != nil {
		t.Fatalf("Valid: %v", err)
	}
	if seg.SrcPort() != 1234 || seg.DstPort() != 21 {
		t.Fatal("ports wrong")
	}
	if seg.Seq() != 0xdeadbeef || seg.Ack() != 0x01020304 {
		t.Fatal("seq/ack wrong")
	}
	if seg.Flags() != TCPAck|TCPPsh || seg.Window() != 8760 {
		t.Fatal("flags/window wrong")
	}
	if !bytes.Equal(seg.Payload(), payload) {
		t.Fatal("payload mismatch")
	}
	if !seg.ChecksumOK(srcIP, dstIP) {
		t.Fatal("checksum should verify")
	}
	seg[20] ^= 1
	if seg.ChecksumOK(srcIP, dstIP) {
		t.Fatal("payload corruption should break checksum")
	}
}

func TestDecodeICMP(t *testing.T) {
	m := MarshalICMP(ICMPFields{Type: ICMPEcho, ID: 9, Seq: 1}, EchoPayload(16, 5))
	p := MarshalIPv4(IPv4Fields{TTL: 64, Protocol: ProtoICMP, Src: srcIP, Dst: dstIP}, m)
	in, err := Decode(p)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Has(LayerTypeIPv4) || !in.Has(LayerTypeICMPv4) || in.Has(LayerTypeTCP) {
		t.Fatalf("layers = %v", in.Layers)
	}
	if in.ICMP.ID() != 9 {
		t.Fatal("decoded view wrong")
	}
}

func TestDecodeUDPAndTCP(t *testing.T) {
	u := MarshalUDP(1, 2, srcIP, dstIP, []byte("x"))
	p := MarshalIPv4(IPv4Fields{TTL: 64, Protocol: ProtoUDP, Src: srcIP, Dst: dstIP}, u)
	in, err := Decode(p)
	if err != nil || !in.Has(LayerTypeUDP) {
		t.Fatalf("udp decode: %v %v", in.Layers, err)
	}
	seg := MarshalTCP(TCPFields{SrcPort: 5, DstPort: 6, Flags: TCPSyn}, srcIP, dstIP, nil)
	p2 := MarshalIPv4(IPv4Fields{TTL: 64, Protocol: ProtoTCP, Src: srcIP, Dst: dstIP}, seg)
	in2, err := Decode(p2)
	if err != nil || !in2.Has(LayerTypeTCP) {
		t.Fatalf("tcp decode: %v %v", in2.Layers, err)
	}
	if in2.TCP.Flags() != TCPSyn {
		t.Fatal("tcp view wrong")
	}
}

func TestDecodeUnknownProtocol(t *testing.T) {
	p := MarshalIPv4(IPv4Fields{TTL: 64, Protocol: 99, Src: srcIP, Dst: dstIP}, []byte{1, 2})
	in, err := Decode(p)
	if err != nil || !in.Has(LayerTypePayload) {
		t.Fatalf("unknown proto: %v %v", in.Layers, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short packet should error")
	}
	// IPv4 claiming ICMP but with a truncated ICMP body.
	p := MarshalIPv4(IPv4Fields{TTL: 64, Protocol: ProtoICMP, Src: srcIP, Dst: dstIP}, []byte{8, 0})
	if _, err := Decode(p); err != ErrTruncated {
		t.Fatalf("truncated icmp: %v", err)
	}
}

func TestLayerTypeString(t *testing.T) {
	if LayerTypeTCP.String() != "TCP" {
		t.Fatal("known name wrong")
	}
	if LayerType(99).String() != "LayerType(99)" {
		t.Fatal("unknown name wrong")
	}
}

// Property: UDP marshal/decode round-trips arbitrary payloads and the
// checksum always verifies.
func TestUDPRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > MTU-IPv4HeaderLen-UDPHeaderLen {
			payload = payload[:MTU-IPv4HeaderLen-UDPHeaderLen]
		}
		u := MarshalUDP(sp, dp, srcIP, dstIP, payload)
		if u.Valid() != nil || !u.ChecksumOK(srcIP, dstIP) {
			return false
		}
		return u.SrcPort() == sp && u.DstPort() == dp && bytes.Equal(u.Payload(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: TCP checksum verification fails for any single-bit flip.
func TestTCPChecksumBitFlipProperty(t *testing.T) {
	f := func(seed uint32, bit uint16) bool {
		payload := []byte{byte(seed), byte(seed >> 8), byte(seed >> 16)}
		seg := MarshalTCP(TCPFields{SrcPort: 1, DstPort: 2, Seq: seed, Flags: TCPAck}, srcIP, dstIP, payload)
		pos := int(bit) % (len(seg) * 8)
		seg[pos/8] ^= 1 << (pos % 8)
		return !seg.ChecksumOK(srcIP, dstIP)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: IPv4 marshal preserves payload bytes exactly.
func TestIPv4PayloadProperty(t *testing.T) {
	f := func(payload []byte, id uint16) bool {
		if len(payload) > MTU-IPv4HeaderLen {
			payload = payload[:MTU-IPv4HeaderLen]
		}
		p := MarshalIPv4(IPv4Fields{ID: id, TTL: 64, Protocol: ProtoUDP, Src: srcIP, Dst: dstIP}, payload)
		return p.Valid() == nil && p.ChecksumOK() && bytes.Equal(p.Payload(), payload) && p.ID() == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
