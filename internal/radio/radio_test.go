package radio

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tracemod/internal/sim"
)

func testProfile() Profile {
	return Profile{
		Name: "test",
		Segments: []Segment{
			{Label: "a0-a1", Dur: 10 * time.Second, SignalLo: 10, SignalHi: 20, LatencyLo: time.Millisecond, LatencyHi: 5 * time.Millisecond, BWLo: 1e6, BWHi: 2e6, LossLo: 0, LossHi: 0.1},
			{Label: "a1-a2", Dur: 5 * time.Second, SignalLo: 1, SignalHi: 4, LatencyLo: 50 * time.Millisecond, LatencyHi: 300 * time.Millisecond, BWLo: 0.2e6, BWHi: 0.5e6, LossLo: 0.4, LossHi: 0.8},
		},
	}
}

func TestProfileDurationAndCheckpoints(t *testing.T) {
	p := testProfile()
	if p.Duration() != 15*time.Second {
		t.Fatalf("duration = %v", p.Duration())
	}
	cps := p.Checkpoints()
	if len(cps) != 3 {
		t.Fatalf("checkpoints = %v", cps)
	}
	if cps[0].Label != "a0" || cps[1].Label != "a1" || cps[2].Label != "a2" {
		t.Fatalf("labels = %v", cps)
	}
	if cps[1].At != 10*time.Second || cps[2].At != 15*time.Second {
		t.Fatalf("offsets = %v", cps)
	}
}

func TestModelSamplesWithinSegmentBands(t *testing.T) {
	m := NewModel(testProfile(), rand.New(rand.NewSource(5)))
	// Samples well inside segment 1 (skip the boundary smoothing tail).
	for off := 2 * time.Second; off < 9*time.Second; off += 500 * time.Millisecond {
		q := m.SampleAt(off)
		if q.Signal < 9 || q.Signal > 21 {
			t.Fatalf("segment 1 signal %v out of band at %v", q.Signal, off)
		}
		if q.Latency < time.Millisecond/2 || q.Latency > 6*time.Millisecond {
			t.Fatalf("segment 1 latency %v out of band at %v", q.Latency, off)
		}
		if q.Loss < 0 || q.Loss > 0.15 {
			t.Fatalf("segment 1 loss %v out of band at %v", q.Loss, off)
		}
	}
	// Deep inside segment 2 conditions must be much worse.
	q := m.SampleAt(14 * time.Second)
	if q.Signal > 8 {
		t.Fatalf("segment 2 signal %v, want near-noise", q.Signal)
	}
	if q.Latency < 20*time.Millisecond {
		t.Fatalf("segment 2 latency %v, want elevated", q.Latency)
	}
	if q.Loss < 0.2 {
		t.Fatalf("segment 2 loss %v, want heavy", q.Loss)
	}
}

func TestModelClampsBeyondEnds(t *testing.T) {
	m := NewModel(testProfile(), rand.New(rand.NewSource(5)))
	end := m.SampleAt(15 * time.Second)
	past := m.SampleAt(time.Hour)
	if end != past {
		t.Fatal("samples past the end should hold the final grid value")
	}
	if m.Sample(sim.Time(-5)) != m.Sample(0) {
		t.Fatal("negative times should clamp to start")
	}
}

func TestModelDeterministicPerSeed(t *testing.T) {
	a := NewModel(testProfile(), rand.New(rand.NewSource(7)))
	b := NewModel(testProfile(), rand.New(rand.NewSource(7)))
	c := NewModel(testProfile(), rand.New(rand.NewSource(8)))
	same, diff := true, false
	for off := time.Duration(0); off < 15*time.Second; off += GridStep {
		if a.SampleAt(off) != b.SampleAt(off) {
			same = false
		}
		if a.SampleAt(off) != c.SampleAt(off) {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed must reproduce the identical sample path")
	}
	if !diff {
		t.Fatal("different seeds should give different sample paths")
	}
}

func TestLatencySpikes(t *testing.T) {
	p := Profile{Name: "spiky", Segments: []Segment{{
		Label: "s0-s1", Dur: 200 * time.Second,
		SignalLo: 10, SignalHi: 12,
		LatencyLo: time.Millisecond, LatencyHi: 2 * time.Millisecond,
		SpikeProb: 0.2, SpikeMax: 100 * time.Millisecond,
		BWLo: 1e6, BWHi: 1.1e6,
	}}}
	m := NewModel(p, rand.New(rand.NewSource(3)))
	spikes := 0
	n := 0
	for off := time.Duration(0); off < 200*time.Second; off += GridStep {
		n++
		if m.SampleAt(off).Latency > 5*time.Millisecond {
			spikes++
		}
	}
	frac := float64(spikes) / float64(n)
	if frac < 0.1 || frac > 0.3 {
		t.Fatalf("spike fraction %.3f, want ≈0.2", frac)
	}
}

func TestEmptyProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewModel(Profile{Name: "empty"}, rand.New(rand.NewSource(1)))
}

func TestSegmentLabelFallback(t *testing.T) {
	p := Profile{Name: "nolabel", Segments: []Segment{{Label: "plain", Dur: time.Second, SignalLo: 1, SignalHi: 2, BWLo: 1e6, BWHi: 1e6}}}
	cps := p.Checkpoints()
	if cps[0].Label != "p0" || cps[1].Label != "plain" {
		t.Fatalf("labels = %v", cps)
	}
}

// Property: every sample from any seed is physically plausible — positive
// bandwidth cost, non-negative latency, loss in [0,1).
func TestSamplePlausibilityProperty(t *testing.T) {
	prof := testProfile()
	f := func(seed int64, offMs uint32) bool {
		m := NewModel(prof, rand.New(rand.NewSource(seed)))
		q := m.SampleAt(time.Duration(offMs) * time.Millisecond)
		return q.PerByte > 0 && q.Latency >= 0 && q.Loss >= 0 && q.Loss < 1 && q.Signal >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
