// Package radio models a WaveLAN-like wireless channel as a time-varying
// quality process. A Profile is a piecewise description of a traversal —
// per-segment ranges for signal level, latency, bandwidth, and loss,
// authored from the paper's Figures 2-5 — and a Model realizes one trial of
// that profile as a deterministic, seeded sample path which simnet media
// consult per packet.
//
// This package substitutes for the physical WaveLAN radio, the WavePoint
// infrastructure, and the human walking the path: the trace-modulation
// methodology only ever observes the channel end-to-end, so any channel
// with the right magnitudes and variation exercises the identical
// collection, distillation, and modulation code.
package radio

import (
	"fmt"
	"math/rand"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
)

// Segment is one leg of a traversal with stationary statistics. Values are
// drawn per grid step from the given ranges with first-order smoothing, so
// conditions wander within the band rather than jumping.
type Segment struct {
	// Label names the leg after its bounding checkpoints, e.g. "x0-x1".
	Label string
	// Dur is how long the leg takes.
	Dur time.Duration

	// SignalLo/Hi bound the device's reported signal level in WaveLAN
	// units (levels below ~5 are background noise).
	SignalLo, SignalHi float64

	// LatencyLo/Hi bound the one-way channel latency.
	LatencyLo, LatencyHi time.Duration
	// SpikeProb is the per-sample probability of a latency spike up to
	// SpikeMax (media-access stalls; the paper's Porter trace spikes to
	// 100 ms).
	SpikeProb float64
	SpikeMax  time.Duration

	// BWLo/Hi bound the instantaneous bandwidth in bits/second.
	BWLo, BWHi float64

	// LossLo/Hi bound the packet loss probability.
	LossLo, LossHi float64
}

// Profile is an ordered traversal of segments.
type Profile struct {
	Name     string
	Segments []Segment
}

// Duration returns the total traversal time.
func (p Profile) Duration() time.Duration {
	var d time.Duration
	for _, s := range p.Segments {
		d += s.Dur
	}
	return d
}

// Checkpoints returns the labels marking segment boundaries and their
// offsets from the start, for the figure harness's X axis.
func (p Profile) Checkpoints() []Checkpoint {
	cps := make([]Checkpoint, 0, len(p.Segments)+1)
	var at time.Duration
	for i, s := range p.Segments {
		cps = append(cps, Checkpoint{Label: segStart(s.Label, i), At: at})
		at += s.Dur
	}
	cps = append(cps, Checkpoint{Label: segEnd(p.Segments[len(p.Segments)-1].Label), At: at})
	return cps
}

// Checkpoint is a labelled location along the traversal.
type Checkpoint struct {
	Label string
	At    time.Duration
}

func segStart(label string, i int) string {
	for j := 0; j < len(label); j++ {
		if label[j] == '-' {
			return label[:j]
		}
	}
	return fmt.Sprintf("p%d", i)
}

func segEnd(label string) string {
	for j := len(label) - 1; j >= 0; j-- {
		if label[j] == '-' {
			return label[j+1:]
		}
	}
	return label
}

// GridStep is the resolution at which a Model realizes its sample path.
// 100 ms is far finer than the 5-second distillation window and coarse
// enough to keep trial setup cheap.
const GridStep = 100 * time.Millisecond

// smoothing is the first-order autoregressive weight on the previous grid
// sample; higher values wander more slowly within the segment band. Loss
// uses a slower process than delay: it is dominated by position and
// shadowing, which change on the scale of seconds, and a loss field that
// varies more slowly than the distillation window is also what lets the
// window track it.
const (
	smoothing     = 0.7
	lossSmoothing = 0.95
)

// Model is one seeded realization of a Profile. It implements
// simnet.QualityProvider. Conditions past the end of the traversal hold at
// the final grid sample (the host has stopped moving).
type Model struct {
	prof Profile
	grid []simnet.Quality
}

// NewModel realizes the profile with randomness from rng (draw one from
// sim.Scheduler.RNG per trial for reproducibility).
//
// Each realization first draws trial-level modifiers for loss, bandwidth,
// and latency: successive traversals of the same physical path never see
// identical conditions ("the quality of wireless networks can vary
// dramatically and unpredictably over time and space"), and this
// day-to-day component is what gives the paper's Real columns their
// standard deviations.
func NewModel(prof Profile, rng *rand.Rand) *Model {
	if len(prof.Segments) == 0 {
		panic("radio: profile has no segments")
	}
	total := prof.Duration()
	n := int(total/GridStep) + 1
	grid := make([]simnet.Quality, n)

	uniform := func(lo, hi float64) float64 {
		if hi <= lo {
			return lo
		}
		return lo + rng.Float64()*(hi-lo)
	}

	// Trial-level condition modifiers.
	lossScale := uniform(0.6, 1.4)
	bwScale := uniform(0.93, 1.07)
	latScale := uniform(0.8, 1.3)

	var at time.Duration
	segIdx := 0
	segEnd := prof.Segments[0].Dur
	var prev simnet.Quality
	for i := 0; i < n; i++ {
		for at >= segEnd && segIdx < len(prof.Segments)-1 {
			segIdx++
			segEnd += prof.Segments[segIdx].Dur
		}
		s := prof.Segments[segIdx]

		draw := simnet.Quality{
			Signal:  uniform(s.SignalLo, s.SignalHi),
			Latency: time.Duration(latScale * uniform(float64(s.LatencyLo), float64(s.LatencyHi))),
			PerByte: core.PerByteFromBandwidth(bwScale * uniform(s.BWLo, s.BWHi)),
			Loss:    clamp(lossScale*uniform(s.LossLo, s.LossHi), 0, 0.95),
		}
		q := draw
		if i > 0 {
			q.Signal = smoothing*prev.Signal + (1-smoothing)*draw.Signal
			q.Latency = time.Duration(smoothing*float64(prev.Latency) + (1-smoothing)*float64(draw.Latency))
			q.PerByte = core.PerByte(smoothing*float64(prev.PerByte) + (1-smoothing)*float64(draw.PerByte))
			q.Loss = lossSmoothing*prev.Loss + (1-lossSmoothing)*draw.Loss
		}
		prev = q
		if s.SpikeProb > 0 && rng.Float64() < s.SpikeProb {
			spiked := q
			spiked.Latency = time.Duration(uniform(float64(s.LatencyHi), float64(s.SpikeMax)))
			grid[i] = spiked
		} else {
			grid[i] = q
		}
		// Derived WaveLAN device statistics: quality tracks signal;
		// silence (noise floor) is low and steady.
		grid[i].Quality = clamp(grid[i].Signal/2, 0, 15)
		grid[i].Silence = 3
		at += GridStep
	}
	return &Model{prof: prof, grid: grid}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Profile returns the profile the model realizes.
func (m *Model) Profile() Profile { return m.prof }

// Sample implements simnet.QualityProvider by grid lookup.
func (m *Model) Sample(at sim.Time) simnet.Quality {
	i := int(at.Duration() / GridStep)
	if i < 0 {
		i = 0
	}
	if i >= len(m.grid) {
		i = len(m.grid) - 1
	}
	return m.grid[i]
}

// SampleAt is Sample keyed by offset from the traversal start.
func (m *Model) SampleAt(off time.Duration) simnet.Quality {
	return m.Sample(sim.Time(off))
}
