// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics, histograms, and series range
// reduction for the figure reproductions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the moments of a sample set.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max, Sum float64
}

// Summarize computes a Summary of xs. Std is the sample standard deviation
// (n-1 denominator), matching the paper's reporting; it is 0 for n < 2.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N >= 2 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// String formats as "mean (std)" with two decimals, the paper's table style.
func (s Summary) String() string { return fmt.Sprintf("%.2f (%.2f)", s.Mean, s.Std) }

// Overlaps reports whether |a.Mean - b.Mean| <= a.Std + b.Std, the paper's
// criterion for "accurate within the bounds of experimental error".
func Overlaps(a, b Summary) bool {
	return math.Abs(a.Mean-b.Mean) <= a.Std+b.Std
}

// DivergenceSigma returns |a.Mean-b.Mean| / (a.Std+b.Std), the multiple of
// the summed deviations by which two samples diverge (the paper quotes
// "off by 1.05 times the sum of the standard deviations"). Returns +Inf when
// both deviations are zero and the means differ.
func DivergenceSigma(a, b Summary) float64 {
	diff := math.Abs(a.Mean - b.Mean)
	denom := a.Std + b.Std
	if denom == 0 {
		if diff == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return diff / denom
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if p <= 0 {
		return ys[0]
	}
	if p >= 100 {
		return ys[len(ys)-1]
	}
	pos := p / 100 * float64(len(ys)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return ys[lo]
	}
	frac := pos - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac
}

// Median is the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Range holds the min and max observed at one location across trials; the
// paper's Figures 2-4 plot exactly this vertical bar per checkpoint.
type Range struct {
	Min, Max float64
}

// RangeOf reduces xs to its Range. An empty slice yields {0,0}.
func RangeOf(xs []float64) Range {
	if len(xs) == 0 {
		return Range{}
	}
	r := Range{Min: xs[0], Max: xs[0]}
	for _, x := range xs[1:] {
		if x < r.Min {
			r.Min = x
		}
		if x > r.Max {
			r.Max = x
		}
	}
	return r
}

func (r Range) String() string { return fmt.Sprintf("[%.3g, %.3g]", r.Min, r.Max) }

// Histogram is a fixed-bin histogram over [Lo, Hi); values outside the range
// clamp into the edge bins, matching how the paper's Figure 5 presents
// distributions.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.N++
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the share of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// Render draws an ASCII histogram, one row per bin, for terminal output.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if max > 0 {
			bar = c * width / max
		}
		fmt.Fprintf(&b, "%10.3g | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Welford is an online mean/variance accumulator for long-running streams
// (used for the long-term average bottleneck cost in delay compensation).
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Std returns the running sample standard deviation.
func (w *Welford) Std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}
