package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(s.Mean, 5) {
		t.Fatalf("mean = %v, want 5", s.Mean)
	}
	// Sample std of this classic set is sqrt(32/7).
	if !almostEq(s.Std, math.Sqrt(32.0/7.0)) {
		t.Fatalf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 || s.N != 8 {
		t.Fatalf("min/max/n = %v/%v/%v", s.Min, s.Max, s.N)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	e := Summarize(nil)
	if e.N != 0 || e.Mean != 0 || e.Std != 0 {
		t.Fatalf("empty summary = %+v", e)
	}
	one := Summarize([]float64{3.5})
	if one.Mean != 3.5 || one.Std != 0 || one.Min != 3.5 || one.Max != 3.5 {
		t.Fatalf("single summary = %+v", one)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if got := s.String(); got != "2.00 (1.00)" {
		t.Fatalf("String = %q", got)
	}
}

func TestOverlaps(t *testing.T) {
	a := Summary{Mean: 10, Std: 2}
	b := Summary{Mean: 13, Std: 1.5}
	if !Overlaps(a, b) {
		t.Fatal("3 <= 3.5 should overlap")
	}
	c := Summary{Mean: 14, Std: 1.5}
	if Overlaps(a, c) {
		t.Fatal("4 > 3.5 should not overlap")
	}
}

func TestDivergenceSigma(t *testing.T) {
	a := Summary{Mean: 10, Std: 2}
	b := Summary{Mean: 17, Std: 5}
	if !almostEq(DivergenceSigma(a, b), 1.0) {
		t.Fatalf("sigma = %v", DivergenceSigma(a, b))
	}
	if DivergenceSigma(Summary{Mean: 1}, Summary{Mean: 1}) != 0 {
		t.Fatal("identical zero-std samples diverge by 0")
	}
	if !math.IsInf(DivergenceSigma(Summary{Mean: 1}, Summary{Mean: 2}), 1) {
		t.Fatal("different zero-std samples diverge infinitely")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("extremes wrong")
	}
	if !almostEq(Percentile(xs, 50), 3) {
		t.Fatalf("median = %v", Percentile(xs, 50))
	}
	if !almostEq(Percentile(xs, 25), 2) {
		t.Fatalf("p25 = %v", Percentile(xs, 25))
	}
	if !almostEq(Median([]float64{1, 2}), 1.5) {
		t.Fatal("interpolated median wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestRangeOf(t *testing.T) {
	r := RangeOf([]float64{5, -1, 3})
	if r.Min != -1 || r.Max != 5 {
		t.Fatalf("range = %+v", r)
	}
	if (RangeOf(nil) != Range{}) {
		t.Fatal("empty range should be zero")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{0, 1.9, 2, 5, 9.9, -3, 42})
	// bins: [0,2) [2,4) [4,6) [6,8) [8,10); -3 clamps to first, 42 to last.
	want := []int{3, 1, 1, 0, 2}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("counts = %v, want %v", h.Counts, want)
		}
	}
	if !almostEq(h.BinCenter(0), 1) || !almostEq(h.BinCenter(4), 9) {
		t.Fatal("bin centers wrong")
	}
	if !almostEq(h.Fraction(0), 3.0/7.0) {
		t.Fatalf("fraction = %v", h.Fraction(0))
	}
	if out := h.Render(20); !strings.Contains(out, "#") {
		t.Fatal("render should draw bars")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestWelfordMatchesSummarize(t *testing.T) {
	xs := []float64{1.5, 2.25, -4, 8, 0, 3.125}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	s := Summarize(xs)
	if !almostEq(w.Mean(), s.Mean) || !almostEq(w.Std(), s.Std) || w.N() != s.N {
		t.Fatalf("welford %v/%v vs summarize %v/%v", w.Mean(), w.Std(), s.Mean, s.Std)
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Std() != 0 || w.N() != 0 {
		t.Fatal("empty welford should be zero")
	}
}

// Property: mean is always within [min, max], and std >= 0.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Mean >= s.Min-1e-6 && s.Mean <= s.Max+1e-6 && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram conserves counts for any inputs.
func TestHistogramConservesProperty(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(-1, 1, 7)
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == n && h.N == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, p1, p2 float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(clean, p1) <= Percentile(clean, p2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
