package modulation

// Observability-driven tests: tick-quantization boundary behaviour pinned
// through the packet-lifecycle event tracer, engine metric registration,
// and drop-lottery determinism across equally seeded engines.

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/obs"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
)

// submitOnce runs a single packet with latency f through a fresh engine
// with a 10 ms tick and a tracer, and returns the recorded events plus
// the virtual delivery time (-1 if never delivered).
func submitOnce(t *testing.T, f time.Duration) ([]obs.Event, time.Duration) {
	t.Helper()
	s := sim.New(1)
	tr := constTrace(core.DelayParams{F: f}, 0)
	tracer := obs.NewRingTracer(64)
	e := NewEngine(SimClock{S: s}, &SliceSource{Trace: tr}, Config{Tick: 10 * time.Millisecond, Tracer: tracer})
	deliveredAt := time.Duration(-1)
	e.Submit(simnet.Outbound, 100, func() { deliveredAt = s.Now().Duration() })
	s.RunUntil(sim.Time(time.Second))
	return tracer.Snapshot(), deliveredAt
}

// find returns the first event of the given kind, failing if absent.
func find(t *testing.T, events []obs.Event, kind obs.EventKind) obs.Event {
	t.Helper()
	for _, e := range events {
		if e.Kind == kind {
			return e
		}
	}
	t.Fatalf("no %v event in %d events", kind, len(events))
	return obs.Event{}
}

func hasKind(events []obs.Event, kind obs.EventKind) bool {
	for _, e := range events {
		if e.Kind == kind {
			return true
		}
	}
	return false
}

func TestQuantizationBelowHalfTickIsImmediate(t *testing.T) {
	// Delay strictly under half a tick (5 ms): delivered at once, no
	// quantization event.
	for _, f := range []time.Duration{time.Millisecond, 5*time.Millisecond - time.Nanosecond} {
		events, at := submitOnce(t, f)
		if at != 0 {
			t.Fatalf("F=%v: delivered at %v, want immediate (0)", f, at)
		}
		if hasKind(events, obs.EvQuantize) {
			t.Fatalf("F=%v: unexpected quantize event for sub-half-tick delay", f)
		}
		dev := find(t, events, obs.EvDeliver)
		if dev.Aux != 1 {
			t.Fatalf("F=%v: deliver event not flagged immediate: %+v", f, dev)
		}
	}
}

func TestQuantizationAtExactlyHalfTickRoundsUp(t *testing.T) {
	// Exactly half a tick is NOT under half a tick: it is scheduled, and
	// rounds to the closest tick — 10 ms.
	events, at := submitOnce(t, 5*time.Millisecond)
	if at != 10*time.Millisecond {
		t.Fatalf("delivered at %v, want 10ms", at)
	}
	q := find(t, events, obs.EvQuantize)
	if q.Value != 5*time.Millisecond {
		t.Fatalf("quantize delta = %v, want +5ms", q.Value)
	}
	dev := find(t, events, obs.EvDeliver)
	if dev.Aux == 1 || dev.At != 10*time.Millisecond {
		t.Fatalf("deliver event = %+v, want scheduled at 10ms", dev)
	}
}

func TestQuantizationJustAboveHalfTickRoundsToClosestTick(t *testing.T) {
	// 5ms+1ns rounds to 10 ms (closest tick), recording a just-under
	// +5ms rounding delta.
	events, at := submitOnce(t, 5*time.Millisecond+time.Nanosecond)
	if at != 10*time.Millisecond {
		t.Fatalf("delivered at %v, want 10ms", at)
	}
	q := find(t, events, obs.EvQuantize)
	if q.Value != 5*time.Millisecond-time.Nanosecond {
		t.Fatalf("quantize delta = %v, want 5ms-1ns", q.Value)
	}
}

func TestQuantizationRoundsDownPastTick(t *testing.T) {
	// 14 ms rounds down to 10 ms: the tracer records a negative delta.
	events, at := submitOnce(t, 14*time.Millisecond)
	if at != 10*time.Millisecond {
		t.Fatalf("delivered at %v, want 10ms", at)
	}
	q := find(t, events, obs.EvQuantize)
	if q.Value != -4*time.Millisecond {
		t.Fatalf("quantize delta = %v, want -4ms", q.Value)
	}
}

func TestLifecycleEventOrdering(t *testing.T) {
	// One delayed packet emits, in record order: tuple-switch (from
	// engine construction), submit, bottleneck enter/exit, quantize,
	// deliver.
	events, _ := submitOnce(t, 20*time.Millisecond)
	var kinds []string
	for _, e := range events {
		kinds = append(kinds, e.Kind.String())
	}
	got := strings.Join(kinds, " ")
	// Later tuple-switches may trail as virtual time runs on.
	want := "tuple-switch submit bneck-enter bneck-exit quantize deliver"
	if !strings.HasPrefix(got, want) {
		t.Fatalf("event order = %q, want prefix %q", got, want)
	}
}

func TestEngineMetricsExport(t *testing.T) {
	s := sim.New(1)
	reg := obs.NewRegistry()
	p := core.DelayParams{F: 20 * time.Millisecond, Vb: 1000}
	e := NewEngine(SimClock{S: s}, &SliceSource{Trace: constTrace(p, 0)}, Config{Metrics: reg})
	for i := 0; i < 5; i++ {
		e.Submit(simnet.Outbound, 1000, func() {})
	}
	// Mid-flight: all five packets occupy the bottleneck (1 ms each,
	// nothing has drained yet at virtual time 0).
	if d := reg.Gauge("tracemod_modulation_bottleneck_queue_depth", "").Load(); d != 5 {
		t.Fatalf("queue depth mid-flight = %d, want 5", d)
	}
	s.RunUntil(sim.Time(time.Second))
	out := reg.PrometheusString()
	for _, want := range []string{
		"tracemod_modulation_packets_submitted_total 5",
		"tracemod_modulation_packets_delivered_total 5",
		"tracemod_modulation_bottleneck_queue_depth 0",
		"tracemod_modulation_active_tuple_index",
		"tracemod_modulation_serialization_seconds_count 5",
		"tracemod_modulation_bottleneck_busy_seconds 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestDropsAttributedToTuple(t *testing.T) {
	// Tuple 1 is lossless, tuple 2 drops everything: the per-tuple drop
	// vector must attribute every loss to tuple ordinal 2.
	s := sim.New(1)
	reg := obs.NewRegistry()
	tr := core.Trace{
		{D: time.Second, DelayParams: core.DelayParams{F: time.Millisecond}, L: 0},
		{D: time.Hour, DelayParams: core.DelayParams{F: time.Millisecond}, L: 1},
	}
	e := NewEngine(SimClock{S: s}, &SliceSource{Trace: tr}, Config{Tick: -1, Metrics: reg})
	e.Submit(simnet.Outbound, 100, func() {})
	s.RunUntil(sim.Time(2 * time.Second)) // cross into tuple 2
	for i := 0; i < 3; i++ {
		e.Submit(simnet.Outbound, 100, func() {})
	}
	s.RunUntil(sim.Time(3 * time.Second))
	out := reg.PrometheusString()
	if !strings.Contains(out, `tracemod_modulation_drops_by_tuple_total{tuple="2"} 3`) {
		t.Fatalf("per-tuple drops missing:\n%s", out)
	}
	if strings.Contains(out, `tuple="1"`) {
		t.Fatalf("tuple 1 should have no drops:\n%s", out)
	}
}

func TestEqualSeedsGiveIdenticalDropSequences(t *testing.T) {
	// Satellite contract: two engines with equal seeds produce identical
	// drop sequences (and a different seed produces a different one).
	tr := constTrace(core.DelayParams{F: time.Millisecond}, 0.3)
	seq := func(seed int64) string {
		s := sim.New(1)
		e := NewEngine(SimClock{S: s}, &SliceSource{Trace: tr},
			Config{Tick: -1, RNG: rand.New(rand.NewSource(seed))})
		var b strings.Builder
		for i := 0; i < 300; i++ {
			delivered := false
			e.Submit(simnet.Outbound, 100, func() { delivered = true })
			s.Run()
			if delivered {
				b.WriteByte('.')
			} else {
				b.WriteByte('x')
			}
		}
		return b.String()
	}
	a, b2 := seq(7), seq(7)
	if a != b2 {
		t.Fatal("equal seeds must give identical drop sequences")
	}
	if !strings.Contains(a, "x") {
		t.Fatal("expected drops at 30% loss")
	}
	if seq(8) == a {
		t.Fatal("different seeds should give a different sequence")
	}
}

func TestCompensationEventCarriesAdjustment(t *testing.T) {
	s := sim.New(1)
	tracer := obs.NewRingTracer(32)
	p := core.DelayParams{F: time.Millisecond, Vb: 1000}
	e := NewEngine(SimClock{S: s}, &SliceSource{Trace: constTrace(p, 0)},
		Config{Tick: -1, Compensation: 400, Tracer: tracer})
	e.Submit(simnet.Inbound, 1000, func() {})
	// Bounded run: s.Run would walk the whole hour-long trace and flood
	// the small event ring with tuple switches.
	s.RunUntil(sim.Time(100 * time.Millisecond))
	ev := find(t, tracer.Snapshot(), obs.EvCompensate)
	// Inbound Vb drops from 1000 to 600 ns/B over 1000 bytes: -400µs.
	if ev.Value != -400*time.Microsecond {
		t.Fatalf("compensate adjust = %v, want -400µs", ev.Value)
	}
	if hasKind(tracer.Snapshot(), obs.EvQuantize) {
		t.Fatal("exact scheduling must not quantize")
	}
}
