package modulation

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
)

// outcome records what happened to one packet: whether it was dropped and,
// if delivered, at what virtual instant.
type outcome struct {
	dropped bool
	at      time.Duration
}

func (o outcome) String() string {
	if o.dropped {
		return "drop"
	}
	return fmt.Sprintf("deliver@%v", o.at)
}

// burstPacket is one packet of the differential workload.
type burstPacket struct {
	dir  simnet.Direction
	size int
	gap  time.Duration // virtual time to advance before submitting
}

// mixedWorkload builds a deterministic packet mix: alternating directions,
// varied sizes, and occasional idle gaps so the burst crosses tuple
// boundaries and drains the bottleneck between clusters.
func mixedWorkload(n int) []burstPacket {
	rng := rand.New(rand.NewSource(7))
	pkts := make([]burstPacket, n)
	for i := range pkts {
		dir := simnet.Outbound
		if rng.Intn(2) == 1 {
			dir = simnet.Inbound
		}
		var gap time.Duration
		if rng.Intn(8) == 0 {
			gap = time.Duration(rng.Intn(40)) * time.Millisecond
		}
		pkts[i] = burstPacket{dir: dir, size: 40 + rng.Intn(1400), gap: gap}
	}
	return pkts
}

// runSequential submits the workload one packet at a time through
// SubmitWithDrop, chunked so that each chunk shares one virtual instant
// (gaps advance the clock between chunks).
func runSequential(t *testing.T, tr core.Trace, cfg Config, pkts []burstPacket) ([]outcome, Stats) {
	t.Helper()
	s := sim.New(1)
	cfg.RNG = rand.New(rand.NewSource(42))
	e := engine(s, tr, cfg)
	outs := make([]outcome, len(pkts))
	for i, p := range pkts {
		if p.gap > 0 {
			s.RunFor(p.gap)
		}
		i := i
		e.SubmitWithDrop(p.dir, p.size,
			func() { outs[i] = outcome{at: s.Now().Duration()} },
			func() { outs[i] = outcome{dropped: true} })
	}
	s.Run()
	return outs, e.Stats()
}

// runBatched submits the same workload through SubmitBatch, splitting at
// gap boundaries (a gap means the packets did not arrive in one burst)
// and additionally chunking bursts at the given size.
func runBatched(t *testing.T, tr core.Trace, cfg Config, pkts []burstPacket, chunk int) ([]outcome, Stats) {
	t.Helper()
	s := sim.New(1)
	cfg.RNG = rand.New(rand.NewSource(42))
	e := engine(s, tr, cfg)
	outs := make([]outcome, len(pkts))
	var batch []Submission
	flush := func() {
		if len(batch) > 0 {
			e.SubmitBatch(batch)
			batch = nil
		}
	}
	for i, p := range pkts {
		if p.gap > 0 {
			flush()
			s.RunFor(p.gap)
		}
		i := i
		batch = append(batch, Submission{
			Dir:     p.dir,
			Size:    p.size,
			Deliver: func() { outs[i] = outcome{at: s.Now().Duration()} },
			Drop:    func() { outs[i] = outcome{dropped: true} },
		})
		if len(batch) >= chunk {
			flush()
		}
	}
	flush()
	s.Run()
	return outs, e.Stats()
}

// TestSubmitBatchMatchesSequential is the differential proof the issue
// asks for: for every packet of a mixed workload, SubmitBatch must yield
// the exact same outcome — same drop decisions (same RNG draw order),
// same delivery instants (same bottleneck serialization, quantization,
// and coalescing) — as N sequential SubmitWithDrop calls. Under the sim
// clock, packets of one burst share the sequential path's Now() reading,
// so the equivalence is exact, not approximate.
func TestSubmitBatchMatchesSequential(t *testing.T) {
	configs := []struct {
		name string
		tr   core.Trace
		cfg  Config
	}{
		{"tick-lossy", constTrace(core.DelayParams{F: 20 * time.Millisecond, Vb: 2000, Vr: 500}, 0.2), Config{}},
		{"tick-lossless", constTrace(core.DelayParams{F: 5 * time.Millisecond, Vb: 1000, Vr: 0}, 0), Config{}},
		{"exact-lossy", constTrace(core.DelayParams{F: 3 * time.Millisecond, Vb: 500, Vr: 250}, 0.1), Config{Tick: -1}},
		{"compensated", constTrace(core.DelayParams{F: 10 * time.Millisecond, Vb: 3000, Vr: 0}, 0.05),
			Config{InboundExtra: 1500, Compensation: 800}},
		{"zero-cost", constTrace(core.DelayParams{}, 0), Config{}},
	}
	pkts := mixedWorkload(240)
	for _, tc := range configs {
		for _, chunk := range []int{1, 7, 32, 240} {
			t.Run(fmt.Sprintf("%s/chunk=%d", tc.name, chunk), func(t *testing.T) {
				want, wantStats := runSequential(t, tc.tr, tc.cfg, pkts)
				got, gotStats := runBatched(t, tc.tr, tc.cfg, pkts, chunk)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("packet %d: sequential %v, batched %v", i, want[i], got[i])
					}
				}
				if wantStats != gotStats {
					t.Fatalf("stats diverge: sequential %+v, batched %+v", wantStats, gotStats)
				}
			})
		}
	}
}

// TestSubmitBatchEmpty ensures a zero-length burst is a no-op.
func TestSubmitBatchEmpty(t *testing.T) {
	s := sim.New(1)
	e := engine(s, constTrace(core.DelayParams{F: time.Millisecond}, 0), Config{})
	e.SubmitBatch(nil)
	e.SubmitBatch([]Submission{})
	if st := e.Stats(); st.Submitted != 0 {
		t.Fatalf("empty batch submitted packets: %+v", st)
	}
}
