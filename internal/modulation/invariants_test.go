package modulation

import (
	"testing"
	"testing/quick"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/replay"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
)

// TestBottleneckFIFOProperty: packets submitted in some order leave the
// bottleneck in that order — the unified queue never reorders, regardless
// of sizes, directions, or arrival spacing. (With a residual per-byte cost
// the *delivery* order may legitimately differ by size — the model
// overlaps s·Vr — so the property is stated with Vr = 0, where delivery
// order equals bottleneck order.)
func TestBottleneckFIFOProperty(t *testing.T) {
	f := func(sizes []uint16, gaps []uint16, seed int64) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		s := sim.New(seed)
		p := core.DelayParams{F: 3 * time.Millisecond, Vb: 2000, Vr: 0}
		e := NewEngine(SimClock{S: s}, &SliceSource{Trace: replay.Constant(p, 0, time.Hour, time.Second)},
			Config{Tick: -1, RNG: s.RNG("fifo")})
		var order []int
		at := sim.Time(0)
		for i, sz := range sizes {
			i := i
			size := int(sz%1500) + 1
			gap := time.Duration(0)
			if i < len(gaps) {
				gap = time.Duration(gaps[i]%1000) * time.Microsecond
			}
			at = at.Add(gap)
			dir := simnet.Outbound
			if sz%2 == 1 {
				dir = simnet.Inbound
			}
			s.At(at, func() {
				e.Submit(dir, size, func() { order = append(order, i) })
			})
		}
		s.Run()
		if len(order) != len(sizes) {
			return false // no drops configured, all must deliver
		}
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDeliveryNeverBeforeSubmit: whatever the trace contents, a packet is
// never delivered before it was submitted.
func TestDeliveryNeverBeforeSubmitProperty(t *testing.T) {
	f := func(fMs, vb uint16, tick uint8, seed int64) bool {
		s := sim.New(seed)
		p := core.DelayParams{
			F:  time.Duration(fMs%50) * time.Millisecond,
			Vb: core.PerByte(vb % 10000),
			Vr: core.PerByte(vb % 500),
		}
		tk := time.Duration(tick%20) * time.Millisecond
		if tk == 0 {
			tk = -1
		}
		e := NewEngine(SimClock{S: s}, &SliceSource{Trace: replay.Constant(p, 0, time.Hour, time.Second)},
			Config{Tick: tk, RNG: s.RNG("x")})
		ok := true
		for i := 0; i < 20; i++ {
			at := sim.Time(i) * sim.Time(7*time.Millisecond)
			s.At(at, func() {
				e.Submit(simnet.Outbound, 700, func() {
					if s.Now() < at {
						ok = false
					}
				})
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestConservationProperty: submitted = delivered + dropped, always.
func TestConservationProperty(t *testing.T) {
	f := func(loss uint8, n uint8, seed int64) bool {
		s := sim.New(seed)
		l := float64(loss%90) / 100
		p := core.DelayParams{F: time.Millisecond, Vb: 100, Vr: 0}
		e := NewEngine(SimClock{S: s}, &SliceSource{Trace: replay.Constant(p, l, time.Hour, time.Second)},
			Config{Tick: -1, RNG: s.RNG("c")})
		total := int(n%100) + 1
		delivered := 0
		for i := 0; i < total; i++ {
			s.At(sim.Time(i)*sim.Time(time.Millisecond), func() {
				e.Submit(simnet.Outbound, 100, func() { delivered++ })
			})
		}
		s.Run()
		st := e.Stats()
		return st.Submitted == int64(total) && int64(delivered)+st.Dropped == int64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestThroughputMatchesTrace: sustained backlogged traffic drains at
// exactly 1/Vb regardless of tick quantization.
func TestThroughputMatchesTrace(t *testing.T) {
	for _, tick := range []time.Duration{-1, 10 * time.Millisecond} {
		s := sim.New(4)
		p := core.DelayParams{F: 5 * time.Millisecond, Vb: core.PerByteFromBandwidth(1.5e6), Vr: 0}
		e := NewEngine(SimClock{S: s}, &SliceSource{Trace: replay.Constant(p, 0, time.Hour, time.Second)},
			Config{Tick: tick, RNG: s.RNG("tp")})
		const n, size = 500, 1500
		var last sim.Time
		for i := 0; i < n; i++ {
			e.Submit(simnet.Outbound, size, func() { last = s.Now() })
		}
		s.Run()
		wantBits := float64(n * size * 8)
		gotMbps := wantBits / last.Duration().Seconds() / 1e6
		if gotMbps < 1.45 || gotMbps > 1.56 {
			t.Fatalf("tick %v: backlogged throughput %.3f Mb/s, want ≈1.5", tick, gotMbps)
		}
	}
}

// TestEngineDeterministicAcrossRuns: identical seeds yield identical drop
// patterns and delivery times.
func TestEngineDeterministicAcrossRuns(t *testing.T) {
	run := func() []sim.Time {
		s := sim.New(99)
		p := core.DelayParams{F: 2 * time.Millisecond, Vb: 3000, Vr: 200}
		e := NewEngine(SimClock{S: s}, &SliceSource{Trace: replay.Constant(p, 0.25, time.Hour, time.Second)},
			Config{Tick: DefaultTick, RNG: s.RNG("det")})
		var times []sim.Time
		for i := 0; i < 200; i++ {
			s.At(sim.Time(i)*sim.Time(3*time.Millisecond), func() {
				e.Submit(simnet.Outbound, 800, func() { times = append(times, s.Now()) })
			})
		}
		s.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}
