// Package modulation implements the modulation phase (Section 3.3): an
// in-kernel-style layer between IP and the device that delays and drops
// every inbound and outbound packet according to a replay trace.
//
// The layer realizes the paper's design decisions exactly:
//
//   - a single, unified delay queue so inbound and outbound traffic
//     interfere with one another at the bottleneck;
//   - packets pay s·Vb serially at the bottleneck, then F + s·Vr overlapped;
//   - the drop lottery runs only after a packet has passed through the
//     bottleneck queue, so even lost packets consume bottleneck time;
//   - deliveries are quantized to the host's clock-tick resolution (10 ms
//     on the paper's NetBSD kernels): delays shorter than half a tick send
//     immediately, others round to the closest tick;
//   - inbound packets receive delay compensation — the long-term average
//     bottleneck per-byte cost of the physical network under the emulation
//     is subtracted from Vb — correcting the asymmetry of placing the
//     queue at one endpoint (Figure 1).
//
// The engine is clock-abstracted: the same code runs in virtual time under
// the simulator and in real time in the livewire shaping daemon.
package modulation

import (
	"math/rand"
	"strconv"
	"sync"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/obs"
	"tracemod/internal/obs/span"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
)

// DefaultTick matches the 10 ms clock interrupt resolution of the paper's
// hosts. A tick of zero schedules exactly.
const DefaultTick = 10 * time.Millisecond

// Clock abstracts time for the engine.
type Clock interface {
	// Now returns elapsed time since the clock's epoch.
	Now() time.Duration
	// AfterFunc runs fn once d has elapsed.
	AfterFunc(d time.Duration, fn func())
}

// SimClock adapts a sim.Scheduler.
type SimClock struct{ S *sim.Scheduler }

// Now implements Clock.
func (c SimClock) Now() time.Duration { return c.S.Now().Duration() }

// AfterFunc implements Clock.
func (c SimClock) AfterFunc(d time.Duration, fn func()) { c.S.After(d, fn) }

// Source supplies replay-trace tuples to the engine, non-blocking. ok is
// false when no tuple is currently available (the engine then holds its
// current parameters, as the kernel does when the daemon falls behind).
type Source interface {
	Next() (core.Tuple, bool)
}

// SliceSource serves tuples from an in-memory trace, optionally looping
// (the daemon "may write a file of tuples once ... or it may loop over the
// file until interrupted").
type SliceSource struct {
	Trace core.Trace
	Loop  bool
	pos   int
}

// Skip advances the cursor past the first n tuples, as if they had
// already been consumed — crash recovery uses it to resume a session's
// replay where the lost daemon left off. For a looping source the cursor
// wraps; for a one-shot source it clamps to the end of the trace.
func (s *SliceSource) Skip(n int64) {
	if n <= 0 || len(s.Trace) == 0 {
		return
	}
	if s.Loop {
		s.pos = int(n % int64(len(s.Trace)))
		return
	}
	if n > int64(len(s.Trace)) {
		n = int64(len(s.Trace))
	}
	s.pos = int(n)
}

// Next implements Source.
func (s *SliceSource) Next() (core.Tuple, bool) {
	if len(s.Trace) == 0 {
		return core.Tuple{}, false
	}
	if s.pos >= len(s.Trace) {
		if !s.Loop {
			return core.Tuple{}, false
		}
		s.pos = 0
	}
	t := s.Trace[s.pos]
	s.pos++
	return t, true
}

// Config parameterizes an engine.
type Config struct {
	// Tick is the scheduling granularity; DefaultTick if zero, exact
	// scheduling if negative.
	Tick time.Duration
	// InboundExtra reproduces the endpoint-placement artifact of the
	// paper's kernel (Figure 1): an inbound packet has already been
	// serialized once by the physical network before reaching the delay
	// queue, and that receive-path cost is charged serially on top of the
	// emulated bottleneck. Set it to the physical path's per-byte cost to
	// emulate the paper's uncompensated behaviour; leave it zero for an
	// idealized layer with no such artifact.
	InboundExtra core.PerByte
	// Compensation is the paper's correction: the physical network's
	// measured long-term average bottleneck per-byte cost, subtracted
	// from Vb for inbound packets. With InboundExtra present they cancel
	// (up to measurement error), making inbound and outbound behave
	// identically.
	Compensation core.PerByte
	// RNG drives the drop lottery. A nil RNG falls back to a fresh,
	// engine-local source seeded with DefaultDropSeed — never the global
	// math/rand source — so default-configured engines are deterministic
	// and mutually identical.
	RNG *rand.Rand
	// Metrics, if non-nil, registers the engine's counters, gauges, and
	// histograms (names under tracemod_modulation_*) on the registry.
	// When nil the engine carries no instruments and the packet path does
	// no metric work beyond one pointer test.
	Metrics *obs.Registry
	// Tracer, if non-nil, receives a packet-lifecycle event at each stage
	// decision (submit, bottleneck entry/exit, compensation, drop,
	// quantization, delivery, tuple switch). Events are recorded when the
	// engine makes the corresponding decision; for stages that complete
	// later (bottleneck exit, delivery) Event.At carries the scheduled
	// instant. When nil the packet path does no tracing work beyond one
	// pointer test.
	Tracer obs.Tracer
	// Spans, if non-nil, lets the engine root sampled per-packet spans of
	// its own ("modulation.packet") when the caller did not hand one in
	// via SubmitSpan — the standalone relay and the experiment harness use
	// this; emud passes session-rooted spans instead. The span tracer's
	// clock should share the engine clock's epoch so span times line up
	// with event times. When nil (and no parent is passed) the packet path
	// does no span work beyond two pointer tests.
	Spans *span.Tracer
}

// DefaultDropSeed seeds the drop lottery when Config.RNG is nil: a fixed,
// documented constant (the paper's publication year). The engine never
// draws from the shared global math/rand source, so a defaulted engine's
// drop sequence is reproducible and isolated from unrelated code.
const DefaultDropSeed = 1997

// Stats counts engine activity.
type Stats struct {
	Submitted int64 // packets entering the layer
	Dropped   int64 // packets lost by the drop lottery
	Immediate int64 // deliveries under half a tick, sent at once
	Delayed   int64 // deliveries scheduled onto a tick
	Tuples    int64 // tuples consumed from the source
	// Draws counts drop-lottery RNG draws: exactly one per packet once a
	// tuple is in force (unmodulated packets before the first tuple never
	// reach the lottery). Together with the RNG seed it pins the lottery
	// stream's position, which is what lets a migrated session reproduce
	// the exact drop sequence a never-migrated run would have produced.
	Draws int64
}

// instruments bundles the engine's registered metrics. A nil *instruments
// means observability is off: every use is behind one pointer test and the
// obs metric types are themselves nil-safe, so the disabled hot path adds
// no allocations (guarded by the alloc benchmark in bench_test.go).
type instruments struct {
	submitted   *obs.Counter
	delivered   *obs.Counter
	dropped     *obs.Counter
	immediate   *obs.Counter
	scheduled   *obs.Counter
	tuples      *obs.Counter
	compensated *obs.Counter

	dropsByTuple *obs.CounterVec

	queueDepth  *obs.Gauge
	activeTuple *obs.Gauge

	serHist   *obs.Histogram // serialization time paid at the bottleneck
	quantHist *obs.Histogram // tick-quantization rounding delta
	delayHist *obs.Histogram // total scheduled delay
	lagHist   *obs.Histogram // coalesced-batch fire time minus its target

	tupleLabel string // cached ordinal label for dropsByTuple
}

func newInstruments(reg *obs.Registry, tick time.Duration) *instruments {
	return &instruments{
		submitted:   reg.Counter("tracemod_modulation_packets_submitted_total", "Packets entering the modulation layer."),
		delivered:   reg.Counter("tracemod_modulation_packets_delivered_total", "Packets that passed the layer (immediate or scheduled)."),
		dropped:     reg.Counter("tracemod_modulation_packets_dropped_total", "Packets discarded by the drop lottery."),
		immediate:   reg.Counter("tracemod_modulation_deliveries_immediate_total", "Deliveries under half a tick, sent at once."),
		scheduled:   reg.Counter("tracemod_modulation_deliveries_scheduled_total", "Deliveries scheduled onto a clock tick."),
		tuples:      reg.Counter("tracemod_modulation_tuples_consumed_total", "Replay tuples consumed from the source."),
		compensated: reg.Counter("tracemod_modulation_compensation_applied_total", "Inbound packets whose bottleneck cost was adjusted (compensation / inbound extra)."),
		dropsByTuple: reg.CounterVec("tracemod_modulation_drops_by_tuple_total",
			"Drop-lottery losses attributed to the tuple ordinal in force.", "tuple"),
		queueDepth:  reg.Gauge("tracemod_modulation_bottleneck_queue_depth", "Packets currently occupying the unified bottleneck queue."),
		activeTuple: reg.Gauge("tracemod_modulation_active_tuple_index", "Ordinal of the replay tuple currently in force (1-based)."),
		serHist: reg.Histogram("tracemod_modulation_serialization_seconds",
			"Serialization time paid per packet at the emulated bottleneck.", nil),
		quantHist: reg.Histogram("tracemod_modulation_quantization_delta_seconds",
			"Signed rounding delta applied by tick quantization.", obs.TickBuckets(tick)),
		delayHist: reg.Histogram("tracemod_modulation_delay_seconds",
			"Total delay scheduled per delivered packet.", nil),
		lagHist: reg.Histogram("tracemod_modulation_delivery_lag_seconds",
			"How late a coalesced delivery batch fired relative to its quantized target (the delivery-deadline SLO input).", nil),
	}
}

// Engine is the modulation layer's scheduler.
type Engine struct {
	mu    sync.Mutex
	clock Clock
	src   Source
	cfg   Config

	cur        core.Tuple
	curOK      bool
	schedEnd   time.Duration // when cur expires on the cumulative schedule
	starved    bool          // source ran dry; realign schedule on resume
	timerArmed bool          // an advance timer is outstanding
	busy       time.Duration // bottleneck queue busy-until

	ins      *instruments // nil = metrics off
	tracer   obs.Tracer   // nil = event tracing off
	spans    *span.Tracer // nil = self-rooted span tracing off
	inflight int64        // packets currently inside the bottleneck queue

	// pending coalesces tick-quantized deliveries: all packets rounding to
	// the same absolute delivery instant share one clock timer instead of
	// arming one each, which is what keeps a packet burst from flooding the
	// scheduler heap (sim) or the shared emud timer wheel. Batches are
	// recycled through batchFree so steady state allocates no slices.
	// Ordering caveat: a delivery joining an existing batch fires with the
	// first packet's scheduler seq, so it may precede unrelated events
	// scheduled for the same instant in between — deterministic, but
	// same-seed traces interleave differently than without coalescing
	// (DESIGN.md §10, "Delivery coalescing").
	pending   map[time.Duration]*tickBatch
	batchFree []*tickBatch

	stats Stats
}

// tickBatch is the set of deliveries armed for one quantized instant.
type tickBatch struct {
	fns []func()
}

// NewEngine creates a modulation engine. Modulation time starts at the
// clock's current reading.
func NewEngine(clock Clock, src Source, cfg Config) *Engine {
	if cfg.Tick == 0 {
		cfg.Tick = DefaultTick
	}
	if cfg.Tick < 0 {
		cfg.Tick = 0
	}
	if cfg.RNG == nil {
		cfg.RNG = rand.New(rand.NewSource(DefaultDropSeed))
	}
	e := &Engine{clock: clock, src: src, cfg: cfg, tracer: cfg.Tracer, spans: cfg.Spans}
	if cfg.Tick > 0 {
		e.pending = make(map[time.Duration]*tickBatch)
	}
	if cfg.Metrics != nil {
		e.ins = newInstruments(cfg.Metrics, cfg.Tick)
		cfg.Metrics.GaugeFunc("tracemod_modulation_bottleneck_busy_seconds",
			"Remaining busy horizon of the bottleneck queue (0 when idle).",
			func() float64 {
				e.mu.Lock()
				defer e.mu.Unlock()
				if rem := e.busy - e.clock.Now(); rem > 0 {
					return rem.Seconds()
				}
				return 0
			})
	}
	e.schedEnd = clock.Now()
	if n, ok := src.(Notifier); ok {
		n.SetOnAvailable(e.onAvailable)
	}
	// Tuples are consumed with the passage of time, as the paper's kernel
	// reads its buffer — not only when traffic happens to arrive.
	e.mu.Lock()
	e.advance(e.schedEnd)
	e.armAdvanceTimer()
	e.mu.Unlock()
	return e
}

// Notifier is implemented by sources that can signal the arrival of new
// tuples after running dry (the pseudo-device does); the engine uses it to
// resume its schedule without polling.
type Notifier interface {
	SetOnAvailable(fn func())
}

// armAdvanceTimer keeps the tuple schedule aligned with the clock even
// when no packets flow. A starved engine does not rearm: it resumes via
// the source's Notifier (or holds its last tuple forever if the trace
// simply ended). Called with e.mu held.
func (e *Engine) armAdvanceTimer() {
	if e.timerArmed || !e.curOK || e.starved {
		return
	}
	wait := e.schedEnd - e.clock.Now()
	if wait <= 0 {
		wait = time.Millisecond
	}
	e.timerArmed = true
	e.clock.AfterFunc(wait, func() {
		e.mu.Lock()
		e.timerArmed = false
		e.advance(e.clock.Now())
		e.armAdvanceTimer()
		e.mu.Unlock()
	})
}

// onAvailable is the Notifier callback: new tuples arrived after a dry
// spell.
func (e *Engine) onAvailable() {
	e.mu.Lock()
	e.advance(e.clock.Now())
	e.armAdvanceTimer()
	e.mu.Unlock()
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Current returns the tuple currently in force.
func (e *Engine) Current() (core.Tuple, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cur, e.curOK
}

// advance consumes tuples until the cumulative schedule covers now. Tuples
// keep their place on the schedule even if traffic was idle while they
// expired.
func (e *Engine) advance(now time.Duration) {
	for !e.curOK || now >= e.schedEnd {
		t, ok := e.src.Next()
		if !ok {
			e.starved = true
			return // hold current parameters until the daemon catches up
		}
		if e.starved {
			// The daemon fell behind and resumed: realign the schedule to
			// now so the backlog doesn't all expire instantly.
			e.schedEnd = now
			e.starved = false
		}
		e.stats.Tuples++
		e.cur = t
		e.curOK = true
		e.schedEnd += t.D
		if e.ins != nil {
			e.ins.tuples.Inc()
			e.ins.activeTuple.Set(e.stats.Tuples)
			e.ins.tupleLabel = strconv.FormatInt(e.stats.Tuples, 10)
		}
		if e.tracer != nil {
			e.tracer.Record(obs.Event{At: now, Kind: obs.EvTupleSwitch, Dir: -1, Tuple: e.stats.Tuples, Value: t.D})
		}
	}
}

// Submit runs one packet of the given direction and size through the
// layer. deliver is invoked when the packet should continue (possibly
// immediately, from within Submit); dropped packets never continue.
func (e *Engine) Submit(dir simnet.Direction, size int, deliver func()) {
	e.submit(dir, size, nil, deliver, nil)
}

// SubmitWithDrop is Submit with an explicit loss outcome: exactly one of
// deliver or drop runs for every packet. drop is invoked synchronously,
// from within the call, when the packet loses the drop lottery — the
// relay path uses it to return pooled buffers and count losses without
// racing other submitters over aggregate counters.
func (e *Engine) SubmitWithDrop(dir simnet.Direction, size int, deliver, drop func()) {
	e.submit(dir, size, nil, deliver, drop)
}

// SubmitSpan is SubmitWithDrop carrying the packet's span: the engine
// records its stage decisions (cursor fast path, compensation, bottleneck
// occupancy, quantization, coalescing) as events on a "modulation" child
// and covers the scheduled wait with a "wheel.wait" grandchild ended when
// the delivery timer fires. parent may be nil (unsampled packet) — the
// path then behaves exactly like SubmitWithDrop.
func (e *Engine) SubmitSpan(dir simnet.Direction, size int, parent *span.Span, deliver, drop func()) {
	e.submit(dir, size, parent, deliver, drop)
}

// Submission is one packet of a SubmitBatch burst. Span may be nil
// (unsampled); Drop may be nil (losses are then silent, as with Submit).
type Submission struct {
	Dir     simnet.Direction
	Size    int
	Span    *span.Span
	Deliver func()
	Drop    func()
}

// batchOutcome carries one burst packet's post-lock actions out of the
// locked decision phase.
type batchOutcome struct {
	sp    *span.Span
	sync  func()
	delay time.Duration
	arm   func()
}

// outcomePool recycles SubmitBatch's scratch slice so steady-state batch
// submission allocates nothing beyond what the per-packet path already
// does.
var outcomePool = sync.Pool{New: func() any {
	s := make([]batchOutcome, 0, 64)
	return &s
}}

// SubmitBatch runs a burst of packets through the layer under a single
// lock acquisition and a single clock reading, amortizing the cached-
// cursor lookup and the same-tick delivery coalescing across the burst.
// Packets are decided strictly in slice order with the same state
// transitions (bottleneck busy horizon, drop-lottery RNG draws, pending
// tick batches) as N sequential SubmitWithDrop calls, so per-packet
// outcomes — deliver vs drop, and the scheduled delivery instant — are
// identical to the sequential equivalent (the differential test in
// batch_test.go holds the two paths together). The only difference is
// that the whole burst shares one Now() reading, which under a real
// clock is the reading the first packet would have seen.
//
// Synchronous outcomes (immediate deliveries, drops) and timer arming
// happen after the lock is released, in slice order.
func (e *Engine) SubmitBatch(subs []Submission) {
	if len(subs) == 0 {
		return
	}
	op := outcomePool.Get().(*[]batchOutcome)
	outs := *op
	if cap(outs) < len(subs) {
		outs = make([]batchOutcome, len(subs))
	} else {
		outs = outs[:len(subs)]
	}
	// Span setup happens outside the lock, as in submit().
	for i := range subs {
		outs[i] = batchOutcome{sp: e.packetSpan(subs[i].Dir, subs[i].Size, subs[i].Span)}
	}
	e.mu.Lock()
	now := e.clock.Now()
	for i := range subs {
		s := &subs[i]
		outs[i].sync, outs[i].delay, outs[i].arm = e.submitLocked(now, s.Dir, s.Size, outs[i].sp, s.Deliver, s.Drop)
	}
	e.mu.Unlock()
	for i := range outs {
		if outs[i].sync != nil {
			outs[i].sync()
		}
		if outs[i].arm != nil {
			e.clock.AfterFunc(outs[i].delay, outs[i].arm)
		}
		outs[i] = batchOutcome{} // release closure references before pooling
	}
	*op = outs[:0]
	outcomePool.Put(op)
}

// packetSpan performs the span setup for one packet before the engine
// lock is taken: a caller-provided parent gets a "modulation" child;
// otherwise a configured tracer may root a sampled span of its own. A nil
// result (the common case, and always when tracing is off) keeps the rest
// of the path span-free: nil-safe methods, no allocation.
func (e *Engine) packetSpan(dir simnet.Direction, size int, parent *span.Span) *span.Span {
	var sp *span.Span
	if parent != nil {
		sp = parent.Child("modulation")
	} else if e.spans != nil {
		sp = e.spans.Root("modulation.packet")
	}
	if sp != nil {
		sp.Attr("dir", int64(dir))
		sp.Attr("size", int64(size))
	}
	return sp
}

func (e *Engine) submit(dir simnet.Direction, size int, parent *span.Span, deliver, drop func()) {
	sp := e.packetSpan(dir, size, parent)
	e.mu.Lock()
	sync, delay, arm := e.submitLocked(e.clock.Now(), dir, size, sp, deliver, drop)
	e.mu.Unlock()
	if sync != nil {
		sync()
	}
	if arm != nil {
		e.clock.AfterFunc(delay, arm)
	}
}

// submitLocked runs one packet's modulation decision under e.mu (held by
// the caller) and returns the actions to perform once the lock is
// released: sync is the synchronous outcome to invoke (an immediate
// delivery, or the drop callback — nil when the packet was parked on a
// timer), and arm (with its delay) is a timer to schedule. Splitting
// decision from action lets SubmitBatch amortize one lock acquisition and
// one clock read across a whole burst while reusing this exact per-packet
// path, so batch and sequential submission cannot drift apart.
func (e *Engine) submitLocked(now time.Duration, dir simnet.Direction, size int, sp *span.Span, deliver, drop func()) (sync func(), delay time.Duration, arm func()) {
	e.stats.Submitted++
	e.ins.submitPacket() // nil-safe: one branch when obs is off
	// Fast path: the cached cursor (cur/schedEnd) still covers now, so no
	// replay-tuple lookup is needed — the common case, since tuples span
	// many packet times.
	if e.curOK && now < e.schedEnd {
		if sp != nil {
			sp.EventAt("cursor-fastpath", now, 0)
		}
	} else {
		e.advance(now)
		if sp != nil {
			sp.EventAt("cursor-advance", now, e.stats.Tuples)
		}
	}
	if e.tracer != nil {
		e.tracer.Record(obs.Event{At: now, Kind: obs.EvSubmit, Dir: int8(dir), Size: int32(size), Tuple: e.stats.Tuples})
	}
	if !e.curOK {
		// No tuple has ever arrived: pass traffic through unmodulated,
		// as the kernel does before the daemon first writes.
		e.ins.deliverImmediate(0)
		if e.tracer != nil {
			e.tracer.Record(obs.Event{At: now, Kind: obs.EvDeliver, Dir: int8(dir), Size: int32(size), Aux: 1})
		}
		if sp != nil {
			sp.EventAt("deliver-unmodulated", now, 0)
			sp.EndAt(now)
		}
		return deliver, 0, nil
	}
	t := e.cur
	if sp != nil {
		sp.Attr("tuple", e.stats.Tuples)
	}

	// Per-direction bottleneck cost: inbound packets carry the kernel's
	// receive-path over-delay (InboundExtra) and the measured correction
	// for it (Compensation, Section 3.3 / Figure 1).
	vb := t.Vb
	if dir == simnet.Inbound {
		vb += e.cfg.InboundExtra - e.cfg.Compensation
		if vb < 0 {
			vb = 0
		}
		if e.ins != nil || e.tracer != nil || sp != nil {
			if adjust := vb.Cost(size) - t.Vb.Cost(size); adjust != 0 {
				if e.ins != nil {
					e.ins.compensated.Inc()
				}
				if e.tracer != nil {
					e.tracer.Record(obs.Event{At: now, Kind: obs.EvCompensate, Dir: int8(dir), Size: int32(size), Tuple: e.stats.Tuples, Value: adjust})
				}
				sp.EventAt("compensate", now, int64(adjust))
			}
		}
	}

	// Serialize through the unified bottleneck queue.
	start := now
	if e.busy > start {
		start = e.busy
	}
	finishBottleneck := start + vb.Cost(size)
	e.busy = finishBottleneck
	if e.ins != nil {
		e.ins.serHist.Observe(finishBottleneck - start)
		e.trackOccupancy(now, finishBottleneck)
	}
	if e.tracer != nil {
		e.tracer.Record(obs.Event{At: now, Kind: obs.EvBottleneckEnter, Dir: int8(dir), Size: int32(size), Tuple: e.stats.Tuples, Value: start - now})
		e.tracer.Record(obs.Event{At: finishBottleneck, Kind: obs.EvBottleneckExit, Dir: int8(dir), Size: int32(size), Tuple: e.stats.Tuples, Value: finishBottleneck - start})
	}
	if sp != nil {
		sp.EventAt("bneck-enter", now, int64(start-now))
		sp.EventAt("bneck-exit", finishBottleneck, int64(finishBottleneck-start))
	}

	// The drop lottery runs after the bottleneck queue.
	e.stats.Draws++
	if e.cfg.RNG.Float64() < t.L {
		e.stats.Dropped++
		if e.ins != nil {
			e.ins.dropped.Inc()
			e.ins.dropsByTuple.With(e.ins.tupleLabel).Inc()
		}
		if e.tracer != nil {
			e.tracer.Record(obs.Event{At: now, Kind: obs.EvDrop, Dir: int8(dir), Size: int32(size), Tuple: e.stats.Tuples, Aux: int64(obs.DropLottery)})
		}
		if sp != nil {
			sp.EventAt("drop", now, int64(obs.DropLottery))
			sp.EndAt(now)
		}
		return drop, 0, nil // drop may be nil; the caller skips a nil sync
	}

	// Remaining path: latency plus residual per-byte cost, overlapped.
	target := finishBottleneck + t.F + t.Vr.Cost(size)
	delay = target - now

	if e.cfg.Tick > 0 {
		if delay < e.cfg.Tick/2 {
			// Under half a tick: send immediately.
			e.bookImmediate(now, dir, size, sp)
			return deliver, 0, nil
		}
		// Round the delivery time to the closest clock tick.
		exact := target
		target = roundToTick(target, e.cfg.Tick)
		if e.ins != nil {
			e.ins.quantHist.Observe(target - exact)
		}
		if e.tracer != nil {
			e.tracer.Record(obs.Event{At: now, Kind: obs.EvQuantize, Dir: int8(dir), Size: int32(size), Tuple: e.stats.Tuples, Value: target - exact})
		}
		sp.EventAt("quantize", now, int64(target-exact))
		delay = target - now
		if delay <= 0 {
			e.bookImmediate(now, dir, size, sp)
			return deliver, 0, nil
		}
	} else if delay <= 0 {
		e.bookImmediate(now, dir, size, sp)
		return deliver, 0, nil
	}

	e.stats.Delayed++
	if e.ins != nil {
		e.ins.delivered.Inc()
		e.ins.scheduled.Inc()
		e.ins.delayHist.Observe(delay)
	}
	if e.tracer != nil {
		e.tracer.Record(obs.Event{At: target, Kind: obs.EvDeliver, Dir: int8(dir), Size: int32(size), Tuple: e.stats.Tuples, Value: delay})
	}
	if sp != nil {
		// Cover the scheduled wait with a child ended when the timer
		// fires; the modulation span itself ends at the same instant, so
		// the tree shows decision time vs wheel time. Only the sampled
		// path pays for the extra closure. The closure captures a copy of
		// sp scoped to this block — capturing sp itself would move the
		// variable to the heap and cost the unsampled path an allocation.
		psp := sp
		wsp := psp.Child("wheel.wait")
		wsp.Attr("target_ns", int64(target))
		wsp.Attr("delay_ns", int64(delay))
		d := deliver
		deliver = func() {
			at := e.clock.Now()
			wsp.EndAt(at)
			psp.EndAt(at)
			d()
		}
	}
	if e.pending != nil {
		// Tick-quantized deliveries land on a coarse grid, so bursts share
		// delivery instants. Ride the timer already armed for this target
		// instead of arming another one.
		if b, ok := e.pending[target]; ok {
			sp.EventAt("coalesce-join", now, int64(len(b.fns)))
			b.fns = append(b.fns, deliver)
			return nil, 0, nil
		}
		sp.EventAt("coalesce-lead", now, 0)
		b := e.takeBatch()
		b.fns = append(b.fns, deliver)
		e.pending[target] = b
		return nil, delay, func() { e.fireBatch(target) }
	}
	return nil, delay, deliver
}

// takeBatch returns an empty batch from the free list, or a fresh one.
// Called with e.mu held.
func (e *Engine) takeBatch() *tickBatch {
	if n := len(e.batchFree); n > 0 {
		b := e.batchFree[n-1]
		e.batchFree = e.batchFree[:n-1]
		return b
	}
	return &tickBatch{}
}

// fireBatch delivers every packet coalesced onto one quantized instant, in
// submission order, then recycles the batch. Callbacks run outside e.mu:
// they re-enter the stack (and often Submit itself).
func (e *Engine) fireBatch(target time.Duration) {
	e.mu.Lock()
	b := e.pending[target]
	delete(e.pending, target)
	if e.ins != nil && b != nil {
		// Delivery-deadline indicator: how late the batch actually fired.
		if lag := e.clock.Now() - target; lag >= 0 {
			e.ins.lagHist.Observe(lag)
		}
	}
	e.mu.Unlock()
	if b == nil {
		return
	}
	for i, fn := range b.fns {
		b.fns[i] = nil // drop the closure reference before recycling
		fn()
	}
	b.fns = b.fns[:0]
	e.mu.Lock()
	e.batchFree = append(e.batchFree, b)
	e.mu.Unlock()
}

// bookImmediate books an under-half-tick delivery; the caller invokes
// deliver once e.mu is released. Called with e.mu held.
func (e *Engine) bookImmediate(now time.Duration, dir simnet.Direction, size int, sp *span.Span) {
	e.stats.Immediate++
	e.ins.deliverImmediate(0)
	if e.tracer != nil {
		e.tracer.Record(obs.Event{At: now, Kind: obs.EvDeliver, Dir: int8(dir), Size: int32(size), Tuple: e.stats.Tuples, Aux: 1})
	}
	if sp != nil {
		sp.EventAt("deliver-immediate", now, 0)
		sp.EndAt(now)
	}
}

// submitPacket and deliverImmediate are nil-safe instrument helpers so
// the hot path reads as straight-line code when observability is off.
func (ins *instruments) submitPacket() {
	if ins == nil {
		return
	}
	ins.submitted.Inc()
}

func (ins *instruments) deliverImmediate(delay time.Duration) {
	if ins == nil {
		return
	}
	ins.delivered.Inc()
	ins.immediate.Inc()
	ins.delayHist.Observe(delay)
}

// trackOccupancy maintains the bottleneck queue-depth gauge: the packet
// occupies the queue until its serialization finishes, at which point a
// timer decrements the gauge. Only runs with metrics enabled, so the
// plain path schedules no extra timers. Called with e.mu held.
func (e *Engine) trackOccupancy(now, finish time.Duration) {
	if finish <= now {
		return // zero-cost packet: never occupies the queue
	}
	e.inflight++
	e.ins.queueDepth.Set(e.inflight)
	e.clock.AfterFunc(finish-now, func() {
		e.mu.Lock()
		e.inflight--
		e.ins.queueDepth.Set(e.inflight)
		e.mu.Unlock()
	})
}

func roundToTick(t, tick time.Duration) time.Duration {
	return (t + tick/2) / tick * tick
}

// Hook adapts the engine to a simnet hook; install it on both the inbound
// and outbound paths of the host under test.
func Hook(e *Engine) simnet.Hook {
	return simnet.HookFunc(func(dir simnet.Direction, ip []byte, next func([]byte)) {
		e.Submit(dir, len(ip), func() { next(ip) })
	})
}

// Install places the modulation layer on node's input and output paths and
// returns the engine for inspection.
func Install(node *simnet.Node, e *Engine) {
	h := Hook(e)
	node.AddOutboundHook(h)
	node.AddInboundHook(h)
}

// PseudoDevice is the kernel half of the tuple-feeding interface: a
// fixed-size in-kernel buffer the user-level daemon writes tuples into,
// blocking when full.
type PseudoDevice struct {
	ch          *sim.Chan[core.Tuple]
	onAvailable func()
}

// SetOnAvailable implements Notifier.
func (d *PseudoDevice) SetOnAvailable(fn func()) { d.onAvailable = fn }

// DefaultBufferTuples is the in-kernel tuple buffer size.
const DefaultBufferTuples = 32

// NewPseudoDevice creates the device with the given buffer capacity.
func NewPseudoDevice(s *sim.Scheduler, capacity int) *PseudoDevice {
	if capacity <= 0 {
		capacity = DefaultBufferTuples
	}
	return &PseudoDevice{ch: sim.NewChan[core.Tuple](s, capacity)}
}

// Next implements Source for the engine (the kernel reading its buffer).
func (d *PseudoDevice) Next() (core.Tuple, bool) {
	return d.ch.TryRecv()
}

// Buffered returns the number of tuples waiting in the kernel buffer.
func (d *PseudoDevice) Buffered() int { return d.ch.Len() }

// Write blocks the daemon process until the kernel buffer accepts the
// tuple, then signals any waiting reader.
func (d *PseudoDevice) Write(p *sim.Proc, t core.Tuple) {
	d.ch.Send(p, t)
	if d.onAvailable != nil {
		d.onAvailable()
	}
}

// StartDaemon spawns the user-level daemon that feeds trace into the
// pseudo-device, once or in a loop. It returns the device to hand to
// NewEngine.
func StartDaemon(s *sim.Scheduler, trace core.Trace, loop bool) *PseudoDevice {
	dev := NewPseudoDevice(s, DefaultBufferTuples)
	s.Spawn("modulation-daemon", func(p *sim.Proc) {
		for {
			for _, t := range trace {
				dev.Write(p, t)
			}
			if !loop {
				return
			}
		}
	})
	return dev
}
