package modulation

import (
	"math"
	"testing"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/packet"
	"tracemod/internal/replay"
	"tracemod/internal/sim"
	"tracemod/internal/simnet"
)

func engine(s *sim.Scheduler, tr core.Trace, cfg Config) *Engine {
	if cfg.RNG == nil {
		cfg.RNG = s.RNG("mod-test")
	}
	return NewEngine(SimClock{S: s}, &SliceSource{Trace: tr}, cfg)
}

func constTrace(p core.DelayParams, loss float64) core.Trace {
	return replay.Constant(p, loss, time.Hour, time.Second)
}

func TestDelayMatchesModel(t *testing.T) {
	// One packet, exact scheduling: delay = s*Vb + F + s*Vr.
	s := sim.New(1)
	p := core.DelayParams{F: 5 * time.Millisecond, Vb: 1000, Vr: 500}
	e := engine(s, constTrace(p, 0), Config{Tick: -1})
	var deliveredAt sim.Time
	e.Submit(simnet.Outbound, 1000, func() { deliveredAt = s.Now() })
	s.Run()
	want := p.Vb.Cost(1000) + p.F + p.Vr.Cost(1000) // 1ms + 5ms + 0.5ms
	if deliveredAt.Duration() != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt.Duration(), want)
	}
	st := e.Stats()
	if st.Submitted != 1 || st.Delayed != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnifiedBottleneckQueue(t *testing.T) {
	// Two packets submitted together: the second queues behind the first
	// at the bottleneck (paying s*Vb serially) but F overlaps.
	s := sim.New(1)
	p := core.DelayParams{F: 10 * time.Millisecond, Vb: 1000, Vr: 0}
	e := engine(s, constTrace(p, 0), Config{Tick: -1})
	var first, second sim.Time
	e.Submit(simnet.Outbound, 1000, func() { first = s.Now() })
	e.Submit(simnet.Outbound, 1000, func() { second = s.Now() })
	s.Run()
	if first.Duration() != 11*time.Millisecond {
		t.Fatalf("first = %v, want 11ms", first.Duration())
	}
	if second.Duration() != 12*time.Millisecond {
		t.Fatalf("second = %v, want 12ms (1ms behind, F overlapped)", second.Duration())
	}
}

func TestInboundAndOutboundShareQueue(t *testing.T) {
	// The single delay queue means an inbound packet queues behind an
	// outbound one.
	s := sim.New(1)
	p := core.DelayParams{F: 0, Vb: 1000, Vr: 0}
	e := engine(s, constTrace(p, 0), Config{Tick: -1})
	var in sim.Time
	e.Submit(simnet.Outbound, 1000, func() {})
	e.Submit(simnet.Inbound, 1000, func() { in = s.Now() })
	s.Run()
	if in.Duration() != 2*time.Millisecond {
		t.Fatalf("inbound = %v, want 2ms (queued behind outbound)", in.Duration())
	}
}

func TestCompensationReducesInboundOnly(t *testing.T) {
	s := sim.New(1)
	p := core.DelayParams{F: 0, Vb: 1000, Vr: 0}
	comp := core.PerByte(400)
	e := engine(s, constTrace(p, 0), Config{Tick: -1, Compensation: comp})
	var out, in sim.Time
	e.Submit(simnet.Outbound, 1000, func() { out = s.Now() })
	s.Run()
	if out.Duration() != time.Millisecond {
		t.Fatalf("outbound = %v, want full 1ms", out.Duration())
	}
	s2 := sim.New(1)
	e2 := engine(s2, constTrace(p, 0), Config{Tick: -1, Compensation: comp})
	e2.Submit(simnet.Inbound, 1000, func() { in = s2.Now() })
	s2.Run()
	if in.Duration() != 600*time.Microsecond {
		t.Fatalf("inbound = %v, want 0.6ms (Vb-comp)", in.Duration())
	}
}

func TestCompensationFloorsAtZeroVb(t *testing.T) {
	// Overcompensation floors the inbound bottleneck cost at zero; the
	// fixed latency still applies.
	s := sim.New(1)
	p := core.DelayParams{F: time.Millisecond, Vb: 100, Vr: 0}
	e := engine(s, constTrace(p, 0), Config{Tick: -1, Compensation: 10000})
	var in sim.Time
	e.Submit(simnet.Inbound, 1000, func() { in = s.Now() })
	s.Run()
	if in.Duration() != time.Millisecond {
		t.Fatalf("inbound = %v, want F only", in.Duration())
	}
}

func TestInboundExtraChargesBottleneck(t *testing.T) {
	// The kernel artifact: inbound packets pay the physical receive path
	// serially on top of the emulated bottleneck.
	s := sim.New(1)
	p := core.DelayParams{F: 0, Vb: 1000, Vr: 0}
	e := engine(s, constTrace(p, 0), Config{Tick: -1, InboundExtra: 500})
	var in, out sim.Time
	e.Submit(simnet.Inbound, 1000, func() { in = s.Now() })
	s.Run()
	s2 := sim.New(1)
	e2 := engine(s2, constTrace(p, 0), Config{Tick: -1, InboundExtra: 500})
	e2.Submit(simnet.Outbound, 1000, func() { out = s2.Now() })
	s2.Run()
	if in.Duration() != 1500*time.Microsecond {
		t.Fatalf("inbound = %v, want 1.5ms (Vb + extra)", in.Duration())
	}
	if out.Duration() != time.Millisecond {
		t.Fatalf("outbound = %v, want 1ms (extra is inbound-only)", out.Duration())
	}
}

func TestCompensationCancelsInboundExtra(t *testing.T) {
	// The paper's production configuration: measured compensation cancels
	// the artifact and the two directions behave identically.
	s := sim.New(1)
	p := core.DelayParams{F: 2 * time.Millisecond, Vb: 1000, Vr: 100}
	cfg := Config{Tick: -1, InboundExtra: 500, Compensation: 500}
	e := engine(s, constTrace(p, 0), cfg)
	var in sim.Time
	e.Submit(simnet.Inbound, 1000, func() { in = s.Now() })
	s.Run()
	s2 := sim.New(1)
	e2 := engine(s2, constTrace(p, 0), cfg)
	var out sim.Time
	e2.Submit(simnet.Outbound, 1000, func() { out = s2.Now() })
	s2.Run()
	if in != out {
		t.Fatalf("inbound %v != outbound %v with cancelling configuration", in.Duration(), out.Duration())
	}
}

func TestTickQuantization(t *testing.T) {
	s := sim.New(1)
	// Delay = 3ms: under half of a 10ms tick -> immediate.
	p := core.DelayParams{F: 3 * time.Millisecond, Vb: 0, Vr: 0}
	e := engine(s, constTrace(p, 0), Config{Tick: 10 * time.Millisecond})
	immediate := false
	e.Submit(simnet.Outbound, 100, func() { immediate = s.Now() == 0 })
	s.Run()
	if !immediate {
		t.Fatal("3ms delay should send immediately at 10ms tick")
	}
	if e.Stats().Immediate != 1 {
		t.Fatalf("stats = %+v", e.Stats())
	}

	// Delay = 17ms -> rounds to the closest tick (20ms).
	s2 := sim.New(1)
	p2 := core.DelayParams{F: 17 * time.Millisecond, Vb: 0, Vr: 0}
	e2 := engine(s2, constTrace(p2, 0), Config{Tick: 10 * time.Millisecond})
	var at sim.Time
	e2.Submit(simnet.Outbound, 100, func() { at = s2.Now() })
	s2.Run()
	if at.Duration() != 20*time.Millisecond {
		t.Fatalf("delivered at %v, want 20ms", at.Duration())
	}

	// Delay = 13ms -> rounds down to 10ms.
	s3 := sim.New(1)
	p3 := core.DelayParams{F: 13 * time.Millisecond, Vb: 0, Vr: 0}
	e3 := engine(s3, constTrace(p3, 0), Config{Tick: 10 * time.Millisecond})
	var at3 sim.Time
	e3.Submit(simnet.Outbound, 100, func() { at3 = s3.Now() })
	s3.Run()
	if at3.Duration() != 10*time.Millisecond {
		t.Fatalf("delivered at %v, want 10ms", at3.Duration())
	}
}

func TestDropLottery(t *testing.T) {
	s := sim.New(7)
	p := core.DelayParams{F: time.Millisecond, Vb: 10, Vr: 0}
	e := engine(s, constTrace(p, 0.5), Config{Tick: -1})
	delivered := 0
	const n = 1000
	s.Spawn("submitter", func(pr *sim.Proc) {
		for i := 0; i < n; i++ {
			e.Submit(simnet.Outbound, 100, func() { delivered++ })
			pr.Sleep(time.Millisecond)
		}
	})
	s.Run()
	frac := float64(delivered) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("survival = %.3f, want ≈0.5", frac)
	}
	st := e.Stats()
	if st.Dropped+int64(delivered) != n {
		t.Fatalf("dropped %d + delivered %d != %d", st.Dropped, delivered, n)
	}
}

func TestDroppedPacketsStillConsumeBottleneck(t *testing.T) {
	// With L=1 capped to MaxLoss... use manual: first packet will drop
	// (seeded rng), but must still advance the bottleneck busy time for
	// the second.
	s := sim.New(1)
	p := core.DelayParams{F: 0, Vb: 1000, Vr: 0}
	tr := constTrace(p, 0.99)
	e := engine(s, tr, Config{Tick: -1})
	var deliveredAt []time.Duration
	// Submit many; survivors' delivery times must be multiples of 1ms
	// spaced by every prior submission (dropped or not).
	for i := 0; i < 50; i++ {
		e.Submit(simnet.Outbound, 1000, func() { deliveredAt = append(deliveredAt, s.Now().Duration()) })
	}
	s.Run()
	for _, at := range deliveredAt {
		// Delivery k happens at (position-in-queue)*1ms; all 50 packets
		// occupy the bottleneck, so any survivor lands on a 1ms grid
		// beyond its queue position.
		if at%time.Millisecond != 0 {
			t.Fatalf("delivery at %v not on the bottleneck grid", at)
		}
	}
	if e.Stats().Dropped < 40 {
		t.Fatalf("dropped = %d, want most of 50", e.Stats().Dropped)
	}
}

func TestTupleProgressionOnSchedule(t *testing.T) {
	// Tuple 1: F=1ms for 1s. Tuple 2: F=50ms. A packet at t=1.5s must see
	// tuple 2 even though no packet arrived during tuple 1.
	s := sim.New(1)
	tr := core.Trace{
		{D: time.Second, DelayParams: core.DelayParams{F: time.Millisecond}, L: 0},
		{D: time.Hour, DelayParams: core.DelayParams{F: 50 * time.Millisecond}, L: 0},
	}
	e := engine(s, tr, Config{Tick: -1})
	var at sim.Time
	s.At(sim.Time(1500*time.Millisecond), func() {
		e.Submit(simnet.Outbound, 10, func() { at = s.Now() })
	})
	s.Run()
	if got := at.Duration() - 1500*time.Millisecond; got < 49*time.Millisecond {
		t.Fatalf("packet saw %v delay, want tuple-2's ≈50ms", got)
	}
	if e.Stats().Tuples != 2 {
		t.Fatalf("consumed %d tuples, want 2", e.Stats().Tuples)
	}
}

func TestStarvedSourceHoldsCurrent(t *testing.T) {
	s := sim.New(1)
	tr := core.Trace{{D: time.Second, DelayParams: core.DelayParams{F: 30 * time.Millisecond}, L: 0}}
	e := engine(s, tr, Config{Tick: -1})
	var at sim.Time
	s.At(sim.Time(10*time.Second), func() {
		e.Submit(simnet.Outbound, 10, func() { at = s.Now() })
	})
	s.Run()
	if got := at.Duration() - 10*time.Second; got != 30*time.Millisecond {
		t.Fatalf("starved engine applied %v, want last tuple's 30ms", got)
	}
}

func TestNoTuplesPassesThrough(t *testing.T) {
	s := sim.New(1)
	e := engine(s, nil, Config{Tick: -1})
	done := false
	e.Submit(simnet.Outbound, 10, func() { done = s.Now() == 0 })
	s.Run()
	if !done {
		t.Fatal("with no tuples traffic must pass unmodulated")
	}
}

func TestSliceSourceLoop(t *testing.T) {
	src := &SliceSource{Trace: core.Trace{{D: 1, L: 0.1}, {D: 2, L: 0.2}}, Loop: true}
	var ds []time.Duration
	for i := 0; i < 5; i++ {
		tu, ok := src.Next()
		if !ok {
			t.Fatal("looping source must never run out")
		}
		ds = append(ds, tu.D)
	}
	want := []time.Duration{1, 2, 1, 2, 1}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("sequence = %v", ds)
		}
	}
	once := &SliceSource{Trace: core.Trace{{D: 1}}}
	once.Next()
	if _, ok := once.Next(); ok {
		t.Fatal("non-looping source must end")
	}
}

func TestPseudoDeviceBackpressure(t *testing.T) {
	s := sim.New(1)
	dev := NewPseudoDevice(s, 2)
	fed := 0
	s.Spawn("daemon", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			dev.Write(p, core.Tuple{D: time.Second})
			fed++
		}
	})
	s.RunUntil(0)
	if fed != 2 {
		t.Fatalf("daemon fed %d tuples before blocking, want 2 (buffer size)", fed)
	}
	if dev.Buffered() != 2 {
		t.Fatalf("buffered = %d", dev.Buffered())
	}
	// Kernel reads one; daemon wakes and refills.
	if _, ok := dev.Next(); !ok {
		t.Fatal("Next should yield a tuple")
	}
	s.RunUntil(s.Now())
	if fed != 3 {
		t.Fatalf("fed = %d after one read, want 3", fed)
	}
}

func TestStartDaemonFeedsEngine(t *testing.T) {
	s := sim.New(3)
	trace := replay.Constant(core.DelayParams{F: 8 * time.Millisecond, Vb: 100, Vr: 0}, 0, 2*time.Minute, time.Second)
	dev := StartDaemon(s, trace, false)
	e := NewEngine(SimClock{S: s}, dev, Config{Tick: -1, RNG: s.RNG("x")})
	var delays []time.Duration
	s.Spawn("traffic", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			at := p.Now()
			e.Submit(simnet.Outbound, 100, func() { delays = append(delays, s.Now().Sub(at)) })
			p.Sleep(time.Second)
		}
	})
	s.RunFor(25 * time.Second)
	if len(delays) != 20 {
		t.Fatalf("delivered %d of 20", len(delays))
	}
	for i, d := range delays {
		if d < 8*time.Millisecond || d > 9*time.Millisecond {
			t.Fatalf("packet %d delay %v, want ≈8ms", i, d)
		}
	}
}

func TestInstallModulatesLAN(t *testing.T) {
	// Full stack: two nodes on a fast Ethernet; modulation installed on
	// one makes round-trips behave like the replay trace.
	s := sim.New(5)
	m := simnet.NewMedium(s, "ether", simnet.Ethernet10())
	a := simnet.NewNode(s, "a")
	a.AttachNIC(m, packet.IP4(10, 3, 0, 1), packet.IP4(255, 255, 255, 0))
	b := simnet.NewNode(s, "b")
	b.AttachNIC(m, packet.IP4(10, 3, 0, 2), packet.IP4(255, 255, 255, 0))

	p := core.DelayParams{F: 20 * time.Millisecond, Vb: core.PerByteFromBandwidth(1.5e6), Vr: 0}
	e := engine(s, constTrace(p, 0), Config{Tick: -1})
	Install(a, e)

	var rtt time.Duration
	a.RegisterProto(packet.ProtoICMP, func(n *simnet.Node, ip packet.IPv4) {
		msg := packet.ICMP(ip.Payload())
		if msg.Valid() && msg.Type() == packet.ICMPEchoReply {
			if sent, ok := msg.SentAt(); ok {
				rtt = s.Now().Sub(sim.Time(sent))
			}
		}
	})
	echo := packet.MarshalICMP(packet.ICMPFields{Type: packet.ICMPEcho, ID: 2, Seq: 1},
		packet.EchoPayload(100, int64(s.Now())))
	a.SendIP(packet.ProtoICMP, packet.IP4(10, 3, 0, 2), echo)
	s.Run()
	// RTT ≈ 2*(F + s*Vb) for a 128-byte datagram, plus tiny Ethernet time.
	want := p.RoundTrip(128)
	if math.Abs(float64(rtt-want)) > float64(3*time.Millisecond) {
		t.Fatalf("modulated rtt = %v, want ≈%v", rtt, want)
	}
	if e.Stats().Submitted != 2 {
		t.Fatalf("hook saw %d packets, want 2 (echo out, reply in)", e.Stats().Submitted)
	}
}

func TestNilRNGFallsBackToDefaultSeed(t *testing.T) {
	// A nil RNG must produce the documented deterministic fallback, never
	// the global math/rand source: two defaulted engines see identical
	// drop lotteries, run after run.
	tr := constTrace(core.DelayParams{F: time.Millisecond, Vb: 100}, 0.5)
	drops := func() []bool {
		s := sim.New(1)
		e := NewEngine(SimClock{S: s}, &SliceSource{Trace: tr}, Config{Tick: -1})
		var out []bool
		for i := 0; i < 200; i++ {
			delivered := false
			e.Submit(simnet.Outbound, 500, func() { delivered = true })
			s.Run()
			out = append(out, !delivered)
		}
		return out
	}
	a, b := drops(), drops()
	sawDrop := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d: drop outcome differs between defaulted engines", i)
		}
		sawDrop = sawDrop || a[i]
	}
	if !sawDrop {
		t.Fatal("expected some drops at 50% loss")
	}
}

func TestRoundToTick(t *testing.T) {
	tick := 10 * time.Millisecond
	cases := []struct{ in, want time.Duration }{
		{14 * time.Millisecond, 10 * time.Millisecond},
		{15 * time.Millisecond, 20 * time.Millisecond},
		{26 * time.Millisecond, 30 * time.Millisecond},
		{10 * time.Millisecond, 10 * time.Millisecond},
	}
	for _, c := range cases {
		if got := roundToTick(c.in, tick); got != c.want {
			t.Fatalf("roundToTick(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSubmitWithDropOutcomes(t *testing.T) {
	// Exactly one of deliver/drop runs per packet; drop fires only on
	// lottery losses, and the totals reconcile with the engine stats.
	s := sim.New(1)
	e := engine(s, constTrace(core.DelayParams{F: time.Millisecond, Vb: 100}, 0.5), Config{Tick: -1})
	const n = 400
	delivered, dropped := 0, 0
	for i := 0; i < n; i++ {
		e.SubmitWithDrop(simnet.Outbound, 1000,
			func() { delivered++ },
			func() { dropped++ })
	}
	s.Run()
	if delivered+dropped != n {
		t.Fatalf("delivered %d + dropped %d != %d submitted", delivered, dropped, n)
	}
	st := e.Stats()
	if int64(dropped) != st.Dropped {
		t.Fatalf("drop callbacks %d, engine counted %d", dropped, st.Dropped)
	}
	if dropped == 0 || delivered == 0 {
		t.Fatalf("want a mix at L=0.5, got delivered=%d dropped=%d", delivered, dropped)
	}
}

func TestSubmitWithDropNoLoss(t *testing.T) {
	s := sim.New(1)
	e := engine(s, constTrace(core.DelayParams{}, 0), Config{Tick: -1})
	drops := 0
	e.SubmitWithDrop(simnet.Outbound, 100, func() {}, func() { drops++ })
	s.Run()
	if drops != 0 {
		t.Fatalf("drop callback ran %d times on a lossless trace", drops)
	}
}
