// Package tracemod reproduces "Trace-Based Mobile Network Emulation"
// (Noble, Satyanarayanan, Nguyen, Katz — SIGCOMM 1997): trace modulation,
// a methodology that records the end-to-end behaviour of a real wireless
// network and re-creates it, faithfully and repeatably, on a wired
// testbed.
//
// The three phases and where they live:
//
//   - Collection (internal/capture, internal/pinger, internal/tracefmt):
//     an in-kernel-style tracer logs every packet plus wireless device
//     characteristics while a modified ping sends one small and two
//     back-to-back large echoes each second.
//   - Distillation (internal/distill, internal/core): the observations are
//     reduced to a replay trace — network-quality tuples ⟨d, F, Vb, Vr, L⟩
//     — by solving the paper's delay equations per triplet, smoothing with
//     a 5-second sliding window, and estimating loss from ECHOREPLY
//     sequence gaps.
//   - Modulation (internal/modulation, internal/livewire): a layer between
//     IP and the device delays and drops all traffic through a single
//     unified bottleneck queue, quantized to the host clock tick, with
//     delay compensation on inbound packets.
//
// Substrates: a deterministic virtual-time kernel (internal/sim), wire
// formats (internal/packet), an emulated network (internal/simnet), a
// WaveLAN-like radio model and the paper's four scenarios
// (internal/radio, internal/scenario), transports (internal/transport),
// and the three validation benchmarks (internal/apps/...). The experiment
// harness (internal/expt) regenerates every table and figure in the
// paper's evaluation; see cmd/expt.
//
// This facade offers the one-call versions of the pipeline for programs
// that just want a shaped network or a distilled trace.
package tracemod

import (
	"fmt"
	"io"
	"time"

	"tracemod/internal/core"
	"tracemod/internal/distill"
	"tracemod/internal/expt"
	"tracemod/internal/replay"
	"tracemod/internal/scenario"
)

// Version identifies the library release.
const Version = "1.0.0"

// CollectAndDistill performs one collection traversal of the named
// scenario (Porter, Flagstaff, Wean, or Chatterbox) in the simulated
// testbed and returns the distilled replay trace.
func CollectAndDistill(scenarioName string, seed int64) (core.Trace, error) {
	sc, ok := scenario.ByName(scenarioName)
	if !ok {
		return nil, fmt.Errorf("tracemod: unknown scenario %q", scenarioName)
	}
	o := expt.Default()
	o.BaseSeed = seed
	res, err := expt.Collect(sc, 0, o)
	if err != nil {
		return nil, err
	}
	return res.Replay, nil
}

// ReadReplay parses a serialized replay trace.
func ReadReplay(r io.Reader) (core.Trace, error) { return replay.Read(r) }

// WriteReplay serializes a replay trace.
func WriteReplay(w io.Writer, tr core.Trace) error { return replay.Write(w, tr) }

// Synthetic builds simple synthetic traces by name: "wavelan", "slow",
// "step", or "impulse" (Section 6's synthetic-trace application).
func Synthetic(kind string, dur time.Duration) (core.Trace, error) {
	switch kind {
	case "wavelan":
		return replay.WaveLANLike(dur), nil
	case "slow":
		return replay.SlowNetLike(dur), nil
	case "step":
		good := core.DelayParams{F: 2 * time.Millisecond, Vb: core.PerByteFromBandwidth(1.5e6), Vr: 300}
		bad := core.DelayParams{F: 20 * time.Millisecond, Vb: core.PerByteFromBandwidth(200e3), Vr: 2000}
		return replay.Step(good, bad, 0.01, 0.05, dur/2, dur, time.Second), nil
	case "impulse":
		good := core.DelayParams{F: 2 * time.Millisecond, Vb: core.PerByteFromBandwidth(1.5e6), Vr: 300}
		spike := core.DelayParams{F: 100 * time.Millisecond, Vb: core.PerByteFromBandwidth(100e3), Vr: 5000}
		return replay.Impulse(good, spike, 0.01, 0.3, dur/3, dur/6, dur, time.Second), nil
	default:
		return nil, fmt.Errorf("tracemod: unknown synthetic trace %q", kind)
	}
}

// DefaultDistillConfig returns the paper's distillation parameters.
func DefaultDistillConfig() distill.Config { return distill.DefaultConfig() }

// Scenarios lists the built-in scenario names.
func Scenarios() []string {
	var names []string
	for _, sc := range scenario.All() {
		names = append(names, sc.Name)
	}
	return names
}
